// The paper's four behavioral detection features (Section 2.2) and their
// extraction from OSN state.
//
//  1. Invitation frequency — invites per hour, at a short (per active
//     hour) and a long (400-hour window) time scale (Fig 1).
//  2. Outgoing requests accepted — fraction of sent friend requests that
//     were confirmed (Fig 2).
//  3. Incoming requests accepted — fraction of received requests the
//     account accepted (Fig 3).
//  4. Clustering coefficient — over the account's first 50 friends in
//     chronological order (Fig 4).
#pragma once

#include <array>
#include <vector>

#include "graph/clustering.h"
#include "graph/csr.h"
#include "graph/neighbor_view.h"
#include "osn/network.h"

namespace sybil::core {

struct SybilFeatures {
  double invite_rate_short = 0.0;  // invites per active hour
  double invite_rate_long = 0.0;   // invites per hour over the long window
  double outgoing_accept_ratio = 1.0;
  double incoming_accept_ratio = 1.0;
  double clustering_coefficient = 0.0;

  /// Feature vector used by the learned classifiers (4 features, as in
  /// the paper; the short-scale rate represents invitation frequency).
  std::array<double, 4> as_vector() const noexcept {
    return {invite_rate_short, outgoing_accept_ratio, incoming_accept_ratio,
            clustering_coefficient};
  }
  static constexpr std::size_t kFeatureCount = 4;
};

/// Extracts features for accounts of a Network. Builds one NeighborView
/// snapshot (chronological + sorted adjacency) at construction — the
/// setup cost every candidate of a sweep then amortizes; create a fresh
/// extractor after the graph changes.
class FeatureExtractor {
 public:
  /// `long_window_hours` is the paper's 400-hour horizon;
  /// `first_friends` the clustering prefix length (paper: 50).
  explicit FeatureExtractor(const osn::Network& net,
                            double long_window_hours = 400.0,
                            std::size_t first_friends = 50);

  SybilFeatures extract(osn::NodeId account) const;

  /// Batch extraction: clustering goes through the batched first-k
  /// kernel, the remaining features are filled per subject over the
  /// fixed chunk partition (bit-identical to the sequential loop for
  /// any SYBIL_THREADS — each slot is written by exactly one chunk).
  std::vector<SybilFeatures> extract(
      const std::vector<osn::NodeId>& accounts) const;

  const graph::NeighborView& view() const noexcept { return view_; }
  const graph::CsrGraph& snapshot() const noexcept { return view_.csr(); }

 private:
  /// Ledger-derived features (everything but clustering).
  void fill_rates(osn::NodeId account, SybilFeatures& f) const;

  const osn::Network& net_;
  graph::NeighborView view_;
  double long_window_;
  std::size_t first_friends_;
};

}  // namespace sybil::core
