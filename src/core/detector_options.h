// The unified configuration surface of the detection pipeline.
//
// Before this header, each deployment path grew its own config struct —
// StreamDetector::Config (rule + clustering prefix), RealTimeConfig
// (rule + adaptive tuner), and bare ThresholdRule construction — which
// meant three places to set the same rule and no validation anywhere.
// DetectorOptions is the one struct every detector front-end accepts:
// named-field defaults match the paper's deployment (Section 2.3), and
// validate() rejects nonsense before a detector is built with it.
//
// Fields a given detector does not use are simply ignored (the
// streaming path has no adaptive tuner; the batch path has no event
// handlers), so one options value can configure both halves of a
// deployment and guarantee they agree on the rule.
//
// Migration note: `RealTimeConfig` and `StreamDetector::Config` remain
// as deprecated aliases for one release; in-tree code uses
// DetectorOptions everywhere.
#pragma once

#include <cstddef>

#include "core/adaptive.h"
#include "core/threshold_detector.h"

namespace sybil::core {

struct DetectorOptions {
  /// The threshold rule both detector paths apply (paper Section 2.3).
  ThresholdRule rule{};

  /// Clustering prefix length — the paper's "first 50 friends".
  /// Used by StreamDetector and by RealTimeDetector's feature snapshot.
  std::size_t first_friends = 50;

  /// Enables the adaptive feedback tuner on the real-time path.
  bool adaptive = true;
  AdaptiveConfig tuner{};
  /// Retune after this many manual-verification confirmations.
  std::size_t retune_every = 200;

  /// Throws std::invalid_argument naming the offending field when the
  /// options cannot configure any detector (zero prefix length, zero
  /// retune cadence, out-of-range ratios/quantiles, ...).
  void validate() const;
};

}  // namespace sybil::core
