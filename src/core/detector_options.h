// The unified configuration surface of the detection pipeline.
//
// Before this header, each deployment path grew its own config struct —
// which meant three places to set the same rule and no validation
// anywhere. DetectorOptions is the one struct every detector front-end
// accepts: named-field defaults match the paper's deployment
// (Section 2.3), and validate() rejects nonsense before a detector is
// built with it.
//
// Fields a given detector does not use are simply ignored (the
// streaming path has no adaptive tuner; the batch path has no event
// handlers), so one options value can configure both halves of a
// deployment and guarantee they agree on the rule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/adaptive.h"
#include "core/threshold_detector.h"
#include "graph/graph.h"

namespace sybil::core {

/// What StreamDetector::ingest does with an event it must reject.
enum class IngestPolicy {
  /// Quarantine the event into the dead-letter queue with a reason
  /// code and keep going — the production posture (docs/ROBUSTNESS.md).
  kLenient,
  /// Throw a typed StreamError on the first rejected event — the
  /// debugging/backfill posture, where bad input means a broken feed.
  kStrict,
};

/// Hostile-input hardening knobs of the streaming ingestion path
/// (StreamDetector::ingest; the trusted on_* handlers bypass them).
struct IngestOptions {
  /// Reorder tolerance: an event may arrive up to this many hours of
  /// event time behind the newest event seen and still be slotted into
  /// its correct position; anything older is quarantined as
  /// kTimeRegression. 0 applies events immediately in arrival order.
  double watermark_hours = 48.0;

  IngestPolicy policy = IngestPolicy::kLenient;

  /// Most recent quarantined events retained for inspection. Older
  /// entries are evicted (and counted as dropped) once the queue is
  /// full; the deadletter_total counter is exact regardless.
  std::size_t dead_letter_capacity = 1024;

  /// Largest account id the ingestion path will allocate state for.
  /// A hostile id above this is quarantined as kInvalidAccountId
  /// instead of forcing a multi-gigabyte vector resize.
  std::uint32_t max_account_id = (1u << 24) - 1;
};

/// Degradation tier of the supervised detection service
/// (service::ServiceSupervisor). Ordered by severity; transitions are
/// driven by ingest-queue depth watermarks (see OverloadOptions).
enum class ServiceTier : std::uint32_t {
  /// Every admissible event kind is accepted.
  kFull = 0,
  /// Low-priority event kinds (account creations, dropped requests,
  /// seeded friendships) are shed; the request/accept/reject/ban flow
  /// that drives the threshold features still lands.
  kShedLowPriority = 1,
  /// Flag-sweep-only: everything except bans is shed. The detector
  /// keeps its existing state current against bans and keeps emitting
  /// flags from periodic sweeps, but ingests no new feature evidence.
  kSweepOnly = 2,
};

constexpr const char* to_string(ServiceTier tier) noexcept {
  switch (tier) {
    case ServiceTier::kFull: return "full";
    case ServiceTier::kShedLowPriority: return "shed-low-priority";
    case ServiceTier::kSweepOnly: return "sweep-only";
  }
  return "unknown";
}

/// Overload-control knobs of the supervised service: a bounded ingest
/// queue with watermark-based tier transitions (hysteresis: the service
/// degrades at the shed/sweep-only watermarks and recovers only once
/// the queue has drained to the resume watermark, so a load spike does
/// not make the tier flap). Ban events are never shed at any tier or
/// depth — a ban that fails to apply would corrupt verdicts.
struct OverloadOptions {
  /// Hard bound on queued events; beyond it every non-ban event is
  /// shed regardless of tier.
  std::size_t queue_capacity = 8192;
  /// Queue depth at or above which the service enters
  /// ServiceTier::kShedLowPriority.
  std::size_t shed_watermark = 4096;
  /// Queue depth at or above which the service enters
  /// ServiceTier::kSweepOnly.
  std::size_t sweep_only_watermark = 6144;
  /// Queue depth at or below which a degraded service returns to
  /// ServiceTier::kFull.
  std::size_t resume_watermark = 1024;
};

/// Incremental structure-based defense tier of the supervised service
/// (service::DefenseScorer, docs/DEFENSES.md). Off by default: with
/// `enabled == false` the service's FlagBatch and stats_json stay
/// byte-identical to builds that predate the tier. When on, supervisors
/// maintain a rolling graph from pumped accept/seed events and publish
/// incremental SybilRank + clustering scores as a *second signal*
/// alongside the threshold verdicts (annotation columns; never gating
/// who is flagged).
struct DefenseOptions {
  bool enabled = false;

  /// SybilRank trust seeds (known-honest accounts). Empty disables the
  /// rank tier; clustering maintenance still runs.
  std::vector<graph::NodeId> seeds;

  /// Power-iteration rounds; 0 = ceil(log2(max(2, n))) like the batch
  /// path, recomputed as the graph grows.
  std::size_t rank_iterations = 0;

  /// Residual below which an incremental rank change stops propagating
  /// (see detect::IncrementalRankOptions). 0 = exact propagation.
  double residual_epsilon = 1e-12;

  /// Full-recompute fallback when a delta's initial frontier exceeds
  /// this fraction of the node count.
  double full_recompute_fraction = 0.25;
};

struct DetectorOptions {
  /// The threshold rule both detector paths apply (paper Section 2.3).
  ThresholdRule rule{};

  /// Clustering prefix length — the paper's "first 50 friends".
  /// Used by StreamDetector and by RealTimeDetector's feature snapshot.
  std::size_t first_friends = 50;

  /// Enables the adaptive feedback tuner on the real-time path.
  bool adaptive = true;
  AdaptiveConfig tuner{};
  /// Retune after this many manual-verification confirmations.
  std::size_t retune_every = 200;

  /// Streaming ingestion hardening (see IngestOptions).
  IngestOptions ingest{};

  /// Degradation tiers of the supervised service (see OverloadOptions;
  /// ignored by detectors used without a ServiceSupervisor).
  OverloadOptions overload{};

  /// Real-time sweep degradation: at most this many candidates are
  /// evaluated per sweep (0 = unlimited); the remainder carries over to
  /// the next sweep in order, so a huge candidate batch degrades into
  /// several bounded sweeps instead of one stalled sweep.
  std::size_t sweep_budget = 0;

  /// Wall-clock budget per sweep in milliseconds (0 = none). At least
  /// one candidate is always evaluated so successive sweeps make
  /// progress. Deterministic runs should use sweep_budget instead.
  double sweep_deadline_millis = 0.0;

  /// Incremental graph-defense tier (see DefenseOptions; ignored by
  /// detectors used without a ServiceSupervisor).
  DefenseOptions defense{};

  /// Throws std::invalid_argument naming the offending field when the
  /// options cannot configure any detector (zero prefix length, zero
  /// retune cadence, out-of-range ratios/quantiles, negative or
  /// non-finite watermark, ...).
  void validate() const;
};

}  // namespace sybil::core
