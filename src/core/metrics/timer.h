// RAII timed spans with optional parent-span nesting — the cheap
// tracing half of the metrics subsystem.
//
// A ScopedTimer opened while another span is active on the same thread
// records under "<parent-path>/<name>", so one Timer metric exists per
// distinct call path (e.g. "bench.run_battery/defense.score.sybilrank").
// Nesting state is a thread-local stack of raw pointers: opening a span
// costs one registry lookup; closing it costs one steady_clock read and
// one sharded record. When metrics are disabled at runtime the
// constructor does nothing at all.
#pragma once

#include <chrono>
#include <string>
#include <string_view>

#include "core/metrics/metrics.h"

namespace sybil::core::metrics {

class ScopedTimer {
 public:
  /// Opens a span in the global registry (no-op when metrics are
  /// disabled). The recorded metric name is the '/'-joined path of
  /// enclosing ScopedTimers on this thread plus `name`.
  explicit ScopedTimer(std::string_view name)
      : ScopedTimer(name, MetricsRegistry::instance()) {}

  ScopedTimer(std::string_view name, MetricsRegistry& registry);

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer();

  /// Full span path ("a/b/c"); empty when the span is inactive.
  const std::string& path() const noexcept { return path_; }

  /// The innermost active span on this thread (nullptr outside spans).
  static const ScopedTimer* current() noexcept;

 private:
  Timer* timer_ = nullptr;  // nullptr = disabled, destructor is a no-op
  ScopedTimer* parent_ = nullptr;
  std::string path_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace sybil::core::metrics
