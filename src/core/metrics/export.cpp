#include "core/metrics/export.h"

#include <cinttypes>
#include <cmath>
#include <cstdio>

namespace sybil::core::metrics {

namespace {

/// Shortest round-trip-safe decimal for a double, with integral values
/// printed without a fraction ("3" not "3.000000"). Keeps the JSON
/// snapshot stable and readable.
std::string format_double(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  // Try increasing precision until the value round-trips exactly.
  for (int precision = 6; precision <= 17; ++precision) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    double parsed = 0.0;
    std::sscanf(buf, "%lf", &parsed);
    if (parsed == v) return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
}

template <typename T, typename Format>
void append_json_array(std::string& out, const std::vector<T>& values,
                       Format&& format) {
  out += '[';
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ',';
    out += format(values[i]);
  }
  out += ']';
}

std::string format_u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

}  // namespace

std::string export_text(const Snapshot& snapshot, bool include_wallclock) {
  std::string out;
  char line[256];
  for (const auto& c : snapshot.counters) {
    std::snprintf(line, sizeof(line), "counter   %-42s %" PRIu64 "\n",
                  c.name.c_str(), c.value);
    out += line;
  }
  for (const auto& g : snapshot.gauges) {
    std::snprintf(line, sizeof(line), "gauge     %-42s %s\n", g.name.c_str(),
                  format_double(g.value).c_str());
    out += line;
  }
  for (const auto& h : snapshot.histograms) {
    std::snprintf(line, sizeof(line),
                  "histogram %-42s count=%" PRIu64 " sum=%s buckets=",
                  h.name.c_str(), h.count, format_double(h.sum).c_str());
    out += line;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i != 0) out += '|';
      out += format_u64(h.counts[i]);
    }
    out += '\n';
  }
  for (const auto& t : snapshot.timers) {
    if (include_wallclock) {
      std::snprintf(line, sizeof(line),
                    "timer     %-42s calls=%" PRIu64 " total_ms=%.3f\n",
                    t.name.c_str(), t.calls, t.total_ms);
    } else {
      std::snprintf(line, sizeof(line), "timer     %-42s calls=%" PRIu64 "\n",
                    t.name.c_str(), t.calls);
    }
    out += line;
  }
  return out;
}

std::string export_json(const Snapshot& snapshot, const JsonOptions& options) {
  std::string out;
  out.reserve(1024);
  out += "{\"counters\":{";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i != 0) out += ',';
    append_json_string(out, snapshot.counters[i].name);
    out += ':';
    out += format_u64(snapshot.counters[i].value);
  }
  out += "},\"gauges\":{";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i != 0) out += ',';
    append_json_string(out, snapshot.gauges[i].name);
    out += ':';
    out += format_double(snapshot.gauges[i].value);
  }
  out += "},\"histograms\":{";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const auto& h = snapshot.histograms[i];
    if (i != 0) out += ',';
    append_json_string(out, h.name);
    out += ":{\"bounds\":";
    append_json_array(out, h.bounds,
                      [](double v) { return format_double(v); });
    out += ",\"counts\":";
    append_json_array(out, h.counts,
                      [](std::uint64_t v) { return format_u64(v); });
    out += ",\"count\":";
    out += format_u64(h.count);
    out += ",\"sum\":";
    out += format_double(h.sum);
    out += '}';
  }
  out += "},\"timers\":{";
  for (std::size_t i = 0; i < snapshot.timers.size(); ++i) {
    const auto& t = snapshot.timers[i];
    if (i != 0) out += ',';
    append_json_string(out, t.name);
    out += ":{\"calls\":";
    out += format_u64(t.calls);
    if (options.include_wallclock) {
      out += ",\"total_ms\":";
      out += format_double(t.total_ms);
      out += ",\"bounds\":";
      append_json_array(out, t.bounds,
                        [](double v) { return format_double(v); });
      out += ",\"counts\":";
      append_json_array(out, t.counts,
                        [](std::uint64_t v) { return format_u64(v); });
    }
    out += '}';
  }
  out += "}}";
  return out;
}

}  // namespace sybil::core::metrics
