#include "core/metrics/timer.h"

namespace sybil::core::metrics {

namespace {

thread_local ScopedTimer* tls_current_span = nullptr;

}  // namespace

ScopedTimer::ScopedTimer(std::string_view name, MetricsRegistry& registry) {
  if (!metrics_enabled()) return;
  parent_ = tls_current_span;
  if (parent_ != nullptr) {
    path_.reserve(parent_->path_.size() + 1 + name.size());
    path_ = parent_->path_;
    path_ += '/';
    path_ += name;
  } else {
    path_ = std::string(name);
  }
  timer_ = &registry.timer(path_);
  tls_current_span = this;
  start_ = std::chrono::steady_clock::now();
}

ScopedTimer::~ScopedTimer() {
  if (timer_ == nullptr) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  timer_->record_ms(
      std::chrono::duration<double, std::milli>(elapsed).count());
  tls_current_span = parent_;
}

const ScopedTimer* ScopedTimer::current() noexcept { return tls_current_span; }

}  // namespace sybil::core::metrics
