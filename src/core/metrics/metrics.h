// Lightweight, thread-safe observability primitives for the detection
// pipeline: named counters, gauges, and fixed-bucket histograms owned by
// a process-wide MetricsRegistry.
//
// Hot-path cost model: every mutation is one relaxed atomic add into a
// per-thread shard (threads are spread over kShards cache-line-padded
// slots), and aggregation happens only on read. Instrumented loops —
// the parallel layer's chunk dispatch, StreamDetector event handlers,
// RealTimeDetector sweeps, each registered SybilDefense::score — pay
// nothing else.
//
// Determinism contract (see DESIGN.md §8): metric collection is
// observe-only. It never feeds back into RNG streams, chunk partitions,
// or detector verdicts, so enabling or disabling metrics cannot perturb
// any bench series or test result. Counter values and integer-valued
// histogram observations are exact integer sums and therefore identical
// for any SYBIL_THREADS; wall-clock durations are inherently not, which
// is why the JSON exporter excludes them unless asked (see export.h).
//
// Off switches:
//   * compile time — build with SYBIL_METRICS_COMPILED=0 (the
//     `metrics-off` CMake preset) and every instrumentation macro in
//     instrument.h expands to nothing;
//   * runtime — SYBIL_METRICS=off (or 0/false) in the environment, or
//     MetricsRegistry::set_enabled(false), short-circuits the macros.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sybil::core::metrics {

/// Number of per-thread shards per metric (power of two). Threads are
/// assigned shards round-robin on first use; contention is bounded by
/// threads sharing a shard, never by readers.
inline constexpr std::size_t kShards = 16;

/// Shard index of the calling thread (stable for the thread's lifetime).
std::size_t thread_shard() noexcept;

/// Fast runtime check used by the instrumentation macros. Initialized
/// from the SYBIL_METRICS environment variable ("off"/"0"/"false"
/// disable; anything else, including unset, enables).
bool metrics_enabled() noexcept;

/// Monotonically increasing event count. add() is a relaxed fetch_add
/// into the caller's shard; value() sums the shards.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[thread_shard()].value.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept;
  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  Shard shards_[kShards];
};

/// Last-write-wins instantaneous value (e.g. accounts currently
/// tracked). A single atomic, not sharded: sets are rare.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i],
/// with one implicit overflow bucket above the last bound. Buckets,
/// count, and sum are sharded like Counter.
///
/// Determinism note: count and bucket counts are exact integer sums.
/// sum() folds per-shard doubles in fixed shard order, which is exact
/// (hence thread-count-independent) for integer-valued observations
/// below 2^53 — the kind every deterministic series in this repo
/// records. Wall-clock observations are not expected to be stable.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v) noexcept;

  const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// Aggregated per-bucket counts (size == bounds().size() + 1).
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const noexcept;
  double sum() const noexcept;
  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0.0};
  };
  std::vector<double> bounds_;
  Shard shards_[kShards];
};

/// A timed span: a call counter (deterministic) plus a wall-clock
/// duration histogram in milliseconds (not deterministic — excluded
/// from the JSON snapshot by default). Fed by ScopedTimer (timer.h).
class Timer {
 public:
  Timer();

  void record_ms(double ms) noexcept {
    calls_.add(1);
    duration_ms_.observe(ms);
  }

  std::uint64_t calls() const noexcept { return calls_.value(); }
  double total_ms() const noexcept { return duration_ms_.sum(); }
  const Histogram& durations() const noexcept { return duration_ms_; }
  void reset() noexcept;

 private:
  Counter calls_;
  Histogram duration_ms_;
};

/// Aggregated point-in-time view of every metric, sorted by name so the
/// exporters are independent of registration order (which may interleave
/// across threads).
struct Snapshot {
  struct CounterSample {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    double value = 0.0;
  };
  struct HistogramSample {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  struct TimerSample {
    std::string name;
    std::uint64_t calls = 0;
    double total_ms = 0.0;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;
  };

  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;
  std::vector<TimerSample> timers;
};

/// Options for the JSON exporter. Wall-clock-derived timer fields are
/// excluded by default so the snapshot is a deterministic function of
/// the workload (the bit the tier-1 determinism tests pin down); opt in
/// for ops dashboards that want latency distributions.
struct JsonOptions {
  bool include_wallclock = false;
};

/// Process-wide, thread-safe metric registry. Metric handles returned by
/// counter()/gauge()/histogram()/timer() are stable for the process
/// lifetime (reset() zeroes values in place, it never invalidates
/// references), so call sites may cache them in function-local statics —
/// the pattern the instrument.h macros use.
///
/// The registry is default-constructible so tests and tools can build
/// isolated instances; instrumentation always targets instance().
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& instance();

  /// Finds or creates the named metric. Looking up an existing name with
  /// a mismatched kind throws std::logic_error.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` applies only on first registration (empty = default
  /// decade buckets).
  Histogram& histogram(std::string_view name,
                       std::vector<double> bounds = {});
  Timer& timer(std::string_view name);

  /// Runtime collection switch (the instrument.h macros consult the
  /// global metrics_enabled(), which set_enabled on instance() flips).
  void set_enabled(bool enabled) noexcept;
  bool enabled() const noexcept;

  /// Aggregates every metric into a name-sorted snapshot.
  Snapshot snapshot() const;

  /// Human-readable dump. Includes wall-clock timings by default; pass
  /// false for a fully deterministic dump (the bench runner's choice,
  /// so whole bench outputs stay byte-identical across SYBIL_THREADS).
  std::string to_text(bool include_wallclock = true) const;

  /// Stable JSON snapshot: keys sorted, fixed number formatting,
  /// wall-clock excluded unless opted in — byte-identical for any
  /// SYBIL_THREADS on a deterministic workload.
  std::string to_json(const JsonOptions& options = {}) const;

  /// Zeroes every metric in place. Handles stay valid.
  void reset();

 private:
  enum class Kind { kCounter, kGauge, kHistogram, kTimer };
  struct Entry {
    std::string name;
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<Timer> timer;
  };

  Entry& find_or_create(std::string_view name, Kind kind,
                        std::vector<double> bounds);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Entry>> entries_;
};

/// Default duration buckets (milliseconds) used for timers and
/// histograms registered without explicit bounds.
const std::vector<double>& default_duration_bounds_ms();

}  // namespace sybil::core::metrics
