// Instrumentation macros — the only way library code should touch the
// metrics subsystem.
//
// Each macro caches its metric handle in a function-local static (the
// registry guarantees handle stability for the process lifetime), checks
// the runtime switch with one relaxed load, and mutates via one sharded
// atomic add. With SYBIL_METRICS_COMPILED=0 (the `metrics-off` CMake
// preset) every macro expands to nothing, so instrumentation is
// provably zero-cost when compiled out: the tier-1 suite is required to
// pass in that configuration.
//
//   SYBIL_METRIC_COUNT(name, n)        — add n to counter `name`
//   SYBIL_METRIC_GAUGE_SET(name, v)    — set gauge `name` to v
//   SYBIL_METRIC_OBSERVE(name, v)      — observe v in histogram `name`
//   SYBIL_METRIC_SCOPED_TIMER(var, n)  — RAII span `n` bound to `var`
#pragma once

#ifndef SYBIL_METRICS_COMPILED
#define SYBIL_METRICS_COMPILED 1
#endif

#if SYBIL_METRICS_COMPILED

#include "core/metrics/metrics.h"
#include "core/metrics/timer.h"

#define SYBIL_METRIC_COUNT(name, n)                                          \
  do {                                                                       \
    if (::sybil::core::metrics::metrics_enabled()) {                         \
      static ::sybil::core::metrics::Counter& sybil_metric_counter_ =        \
          ::sybil::core::metrics::MetricsRegistry::instance().counter(name); \
      sybil_metric_counter_.add(n);                                          \
    }                                                                        \
  } while (0)

#define SYBIL_METRIC_GAUGE_SET(name, v)                                    \
  do {                                                                     \
    if (::sybil::core::metrics::metrics_enabled()) {                       \
      static ::sybil::core::metrics::Gauge& sybil_metric_gauge_ =          \
          ::sybil::core::metrics::MetricsRegistry::instance().gauge(name); \
      sybil_metric_gauge_.set(static_cast<double>(v));                     \
    }                                                                      \
  } while (0)

#define SYBIL_METRIC_OBSERVE(name, v)                                  \
  do {                                                                 \
    if (::sybil::core::metrics::metrics_enabled()) {                   \
      static ::sybil::core::metrics::Histogram& sybil_metric_hist_ =   \
          ::sybil::core::metrics::MetricsRegistry::instance()          \
              .histogram(name);                                        \
      sybil_metric_hist_.observe(static_cast<double>(v));              \
    }                                                                  \
  } while (0)

#define SYBIL_METRIC_SCOPED_TIMER(var, name) \
  ::sybil::core::metrics::ScopedTimer var(name)

#else  // SYBIL_METRICS_COMPILED == 0: everything vanishes.

#define SYBIL_METRIC_COUNT(name, n) \
  do {                              \
  } while (0)
#define SYBIL_METRIC_GAUGE_SET(name, v) \
  do {                                  \
  } while (0)
#define SYBIL_METRIC_OBSERVE(name, v) \
  do {                                \
  } while (0)
#define SYBIL_METRIC_SCOPED_TIMER(var, name) \
  do {                                       \
  } while (0)

#endif  // SYBIL_METRICS_COMPILED
