#include "core/metrics/metrics.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "core/metrics/export.h"

namespace sybil::core::metrics {

namespace {

/// Global runtime switch shared by every call site; metrics_enabled()
/// is a single relaxed load. Initialized once from the environment.
std::atomic<bool>& enabled_flag() noexcept {
  static std::atomic<bool> flag{[] {
    const char* env = std::getenv("SYBIL_METRICS");
    if (env == nullptr) return true;
    return std::strcmp(env, "off") != 0 && std::strcmp(env, "0") != 0 &&
           std::strcmp(env, "false") != 0;
  }()};
  return flag;
}

}  // namespace

std::size_t thread_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return shard;
}

bool metrics_enabled() noexcept {
  return enabled_flag().load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// Counter

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.value.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() noexcept {
  for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) bounds_ = default_duration_bounds_ms();
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    std::sort(bounds_.begin(), bounds_.end());
  }
  const std::size_t buckets = bounds_.size() + 1;
  for (Shard& s : shards_) {
    s.buckets = std::make_unique<std::atomic<std::uint64_t>[]>(buckets);
    for (std::size_t i = 0; i < buckets; ++i) {
      s.buckets[i].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::observe(double v) noexcept {
  const std::size_t b = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  Shard& s = shards_[thread_shard()];
  s.buckets[b].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(v, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1, 0);
  for (const Shard& s : shards_) {
    for (std::size_t i = 0; i < out.size(); ++i) {
      out[i] += s.buckets[i].load(std::memory_order_relaxed);
    }
  }
  return out;
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.count.load(std::memory_order_relaxed);
  }
  return total;
}

double Histogram::sum() const noexcept {
  double total = 0.0;
  for (const Shard& s : shards_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::reset() noexcept {
  for (Shard& s : shards_) {
    for (std::size_t i = 0; i < bounds_.size() + 1; ++i) {
      s.buckets[i].store(0, std::memory_order_relaxed);
    }
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0.0, std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------
// Timer

Timer::Timer() : duration_ms_(default_duration_bounds_ms()) {}

void Timer::reset() noexcept {
  calls_.reset();
  duration_ms_.reset();
}

// ---------------------------------------------------------------------
// MetricsRegistry

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Entry& MetricsRegistry::find_or_create(
    std::string_view name, Kind kind, std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : entries_) {
    if (entry->name == name) {
      if (entry->kind != kind) {
        throw std::logic_error("metrics: '" + std::string(name) +
                               "' already registered with a different kind");
      }
      return *entry;
    }
  }
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->kind = kind;
  switch (kind) {
    case Kind::kCounter:
      entry->counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry->gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry->histogram = std::make_unique<Histogram>(std::move(bounds));
      break;
    case Kind::kTimer:
      entry->timer = std::make_unique<Timer>();
      break;
  }
  entries_.push_back(std::move(entry));
  return *entries_.back();
}

Counter& MetricsRegistry::counter(std::string_view name) {
  return *find_or_create(name, Kind::kCounter, {}).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  return *find_or_create(name, Kind::kGauge, {}).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::vector<double> bounds) {
  return *find_or_create(name, Kind::kHistogram, std::move(bounds)).histogram;
}

Timer& MetricsRegistry::timer(std::string_view name) {
  return *find_or_create(name, Kind::kTimer, {}).timer;
}

void MetricsRegistry::set_enabled(bool enabled) noexcept {
  enabled_flag().store(enabled, std::memory_order_relaxed);
}

bool MetricsRegistry::enabled() const noexcept { return metrics_enabled(); }

Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& entry : entries_) {
      switch (entry->kind) {
        case Kind::kCounter:
          snap.counters.push_back({entry->name, entry->counter->value()});
          break;
        case Kind::kGauge:
          snap.gauges.push_back({entry->name, entry->gauge->value()});
          break;
        case Kind::kHistogram:
          snap.histograms.push_back({entry->name,
                                     entry->histogram->bounds(),
                                     entry->histogram->bucket_counts(),
                                     entry->histogram->count(),
                                     entry->histogram->sum()});
          break;
        case Kind::kTimer:
          snap.timers.push_back({entry->name, entry->timer->calls(),
                                 entry->timer->total_ms(),
                                 entry->timer->durations().bounds(),
                                 entry->timer->durations().bucket_counts()});
          break;
      }
    }
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  std::sort(snap.timers.begin(), snap.timers.end(), by_name);
  return snap;
}

std::string MetricsRegistry::to_text(bool include_wallclock) const {
  return export_text(snapshot(), include_wallclock);
}

std::string MetricsRegistry::to_json(const JsonOptions& options) const {
  return export_json(snapshot(), options);
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : entries_) {
    switch (entry->kind) {
      case Kind::kCounter:
        entry->counter->reset();
        break;
      case Kind::kGauge:
        entry->gauge->reset();
        break;
      case Kind::kHistogram:
        entry->histogram->reset();
        break;
      case Kind::kTimer:
        entry->timer->reset();
        break;
    }
  }
}

const std::vector<double>& default_duration_bounds_ms() {
  static const std::vector<double> bounds = {0.01, 0.1,    1.0,    10.0,
                                             100.0, 1000.0, 10000.0};
  return bounds;
}

}  // namespace sybil::core::metrics
