// Exporters over a metrics Snapshot.
//
// Two formats, two audiences:
//   * export_text — human-readable dump for terminals and the bench
//     runner's "# metrics:" comment block. Wall-clock timings are
//     included by default; pass include_wallclock=false for a fully
//     deterministic dump (the bench runner does, so whole bench
//     outputs stay byte-identical across SYBIL_THREADS).
//   * export_json — machine-readable snapshot with sorted keys and
//     fixed number formatting. Wall-clock-derived timer fields are
//     omitted unless JsonOptions::include_wallclock is set, so the
//     default output is a deterministic function of the workload
//     (byte-identical across SYBIL_THREADS — the property
//     tests/core/metrics_test.cpp pins).
#pragma once

#include <string>

#include "core/metrics/metrics.h"

namespace sybil::core::metrics {

std::string export_text(const Snapshot& snapshot,
                        bool include_wallclock = true);

std::string export_json(const Snapshot& snapshot,
                        const JsonOptions& options = {});

}  // namespace sybil::core::metrics
