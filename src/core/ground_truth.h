// Ground-truth dataset construction: turns simulator output into the
// labeled feature dataset that Table 1's classifiers train on.
#pragma once

#include <vector>

#include "core/features.h"
#include "ml/dataset.h"
#include "osn/network.h"

namespace sybil::core {

/// Extracts the 4-feature vectors of the given accounts and assembles a
/// labeled ml::Dataset (+1 Sybil / -1 normal).
ml::Dataset build_ground_truth_dataset(
    const osn::Network& net, const std::vector<osn::NodeId>& normals,
    const std::vector<osn::NodeId>& sybils);

/// Per-population feature columns, for the CDF figures. Index matches
/// the input id order.
struct FeatureColumns {
  std::vector<double> invite_rate_short;
  std::vector<double> invite_rate_long;
  std::vector<double> outgoing_accept;
  std::vector<double> incoming_accept;
  std::vector<double> clustering;
};

FeatureColumns feature_columns(const osn::Network& net,
                               const std::vector<osn::NodeId>& accounts);

}  // namespace sybil::core
