// Common verdict vocabulary of the two deployment paths.
//
// StreamDetector (event-driven) and RealTimeDetector (periodic sweeps)
// used to report flags differently — one returned bare node ids, the
// other made callers re-extract features to act on a flag. Both now
// return a FlagBatch: one FlagRecord per newly flagged account carrying
// the account id, the feature vector *at flag time* (exactly what the
// rule fired on — the evidence a manual-verification queue needs), and
// the detection timestamp. Callers, and the metrics hooks, treat the
// batch and streaming paths uniformly.
#pragma once

#include <cstddef>
#include <vector>

#include "core/features.h"
#include "osn/network.h"

namespace sybil::core {

/// One account crossing the threshold rule.
struct FlagRecord {
  osn::NodeId account = 0;
  /// Features the rule fired on, captured at flag time.
  SybilFeatures features{};
  /// Event/sweep time of the detection (simulation hours).
  graph::Time flagged_at = 0.0;
  /// Second-signal annotation columns, filled by the service's defense
  /// tier (service::DefenseScorer) when DetectorOptions::defense is
  /// enabled: the account's rolling SybilRank trust and clustering
  /// coefficient at drain time. Defaults (defense_scored == false)
  /// when the tier is off — annotation never changes who is flagged,
  /// only what rides along (docs/DEFENSES.md §Hybrid merge rule).
  double defense_rank = 0.0;
  double defense_clustering = 0.0;
  bool defense_scored = false;
};

/// Accounts newly flagged by one sweep / since the last drain. Each
/// account appears at most once per detector lifetime.
struct FlagBatch {
  std::vector<FlagRecord> records;

  bool empty() const noexcept { return records.empty(); }
  std::size_t size() const noexcept { return records.size(); }
  auto begin() const noexcept { return records.begin(); }
  auto end() const noexcept { return records.end(); }
  const FlagRecord& operator[](std::size_t i) const noexcept {
    return records[i];
  }

  /// Bare account ids, for callers that only need the legacy shape.
  std::vector<osn::NodeId> ids() const {
    std::vector<osn::NodeId> out;
    out.reserve(records.size());
    for (const FlagRecord& r : records) out.push_back(r.account);
    return out;
  }
};

}  // namespace sybil::core
