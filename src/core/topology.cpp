#include "core/topology.h"

#include <algorithm>
#include <unordered_set>

namespace sybil::core {

TopologyAnalyzer::TopologyAnalyzer(const graph::TimestampedGraph& g,
                                   std::vector<osn::NodeId> sybil_ids)
    : csr_(graph::CsrGraph::from(g)),
      sybils_(std::move(sybil_ids)),
      mask_(csr_.node_count(), false) {
  for (osn::NodeId s : sybils_) mask_.at(s) = true;

  for (osn::NodeId s : sybils_) {
    for (osn::NodeId v : csr_.neighbors(s)) {
      if (mask_[v]) {
        if (s < v) ++sybil_edges_;
      } else {
        ++attack_edges_;
      }
    }
  }

  comps_ = graph::connected_components_masked(csr_, mask_);

  // Per-component tallies (skip singletons afterwards).
  std::vector<ComponentStats> all(comps_.count());
  for (std::uint32_t c = 0; c < all.size(); ++c) {
    all[c].component = c;
    all[c].sybils = comps_.size[c];
  }
  // Audience needs distinct normal neighbors per component; a per-node
  // pass with one hash set keyed by (component, normal) would be large,
  // so collect normal-neighbor pairs then sort-unique.
  std::vector<std::pair<std::uint32_t, osn::NodeId>> audience_pairs;
  for (osn::NodeId s : sybils_) {
    const std::uint32_t c = comps_.label[s];
    for (osn::NodeId v : csr_.neighbors(s)) {
      if (mask_[v]) {
        if (s < v) ++all[c].sybil_edges;
      } else {
        ++all[c].attack_edges;
        audience_pairs.emplace_back(c, v);
      }
    }
  }
  std::sort(audience_pairs.begin(), audience_pairs.end());
  audience_pairs.erase(
      std::unique(audience_pairs.begin(), audience_pairs.end()),
      audience_pairs.end());
  for (const auto& [c, v] : audience_pairs) ++all[c].audience;

  for (const ComponentStats& cs : all) {
    if (cs.sybils >= 2) stats_.push_back(cs);
  }
  std::sort(stats_.begin(), stats_.end(),
            [](const ComponentStats& a, const ComponentStats& b) {
              return a.sybils != b.sybils ? a.sybils > b.sybils
                                          : a.component < b.component;
            });
}

std::vector<double> TopologyAnalyzer::sybil_total_degrees() const {
  std::vector<double> out;
  out.reserve(sybils_.size());
  for (osn::NodeId s : sybils_) {
    out.push_back(static_cast<double>(csr_.degree(s)));
  }
  return out;
}

std::vector<double> TopologyAnalyzer::sybil_edge_degrees() const {
  std::vector<double> out;
  out.reserve(sybils_.size());
  for (osn::NodeId s : sybils_) {
    std::uint64_t d = 0;
    for (osn::NodeId v : csr_.neighbors(s)) d += mask_[v] ? 1 : 0;
    out.push_back(static_cast<double>(d));
  }
  return out;
}

double TopologyAnalyzer::fraction_with_sybil_edge() const {
  if (sybils_.empty()) return 0.0;
  std::size_t connected = 0;
  for (osn::NodeId s : sybils_) {
    for (osn::NodeId v : csr_.neighbors(s)) {
      if (mask_[v]) {
        ++connected;
        break;
      }
    }
  }
  return static_cast<double>(connected) / static_cast<double>(sybils_.size());
}

std::vector<double> TopologyAnalyzer::component_sizes() const {
  std::vector<double> out;
  out.reserve(stats_.size());
  for (const ComponentStats& cs : stats_) {
    out.push_back(static_cast<double>(cs.sybils));
  }
  return out;
}

std::vector<osn::NodeId> TopologyAnalyzer::component_members(
    std::size_t size_rank) const {
  if (size_rank >= stats_.size()) return {};
  return comps_.members(stats_[size_rank].component);
}

TopologyAnalyzer::ComponentDegrees TopologyAnalyzer::component_degrees(
    std::size_t size_rank) const {
  ComponentDegrees out;
  for (osn::NodeId s : component_members(size_rank)) {
    std::uint64_t sd = 0;
    for (osn::NodeId v : csr_.neighbors(s)) sd += mask_[v] ? 1 : 0;
    out.sybil_degree.push_back(static_cast<double>(sd));
    out.total_degree.push_back(static_cast<double>(csr_.degree(s)));
  }
  return out;
}

}  // namespace sybil::core
