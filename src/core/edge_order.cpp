#include "core/edge_order.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sybil::core {

std::size_t EdgeOrderRow::sybil_edge_count() const {
  return static_cast<std::size_t>(
      std::count(flags.begin(), flags.end(), true));
}

std::size_t EdgeOrderRow::longest_sybil_run() const {
  std::size_t best = 0, run = 0;
  for (bool f : flags) {
    run = f ? run + 1 : 0;
    best = std::max(best, run);
  }
  return best;
}

std::size_t EdgeOrderRow::leading_sybil_run() const {
  std::size_t run = 0;
  for (bool f : flags) {
    if (!f) break;
    ++run;
  }
  return run;
}

double EdgeOrderRow::mean_sybil_position() const {
  if (flags.size() < 2) return -1.0;
  double total = 0.0;
  std::size_t count = 0;
  for (std::size_t i = 0; i < flags.size(); ++i) {
    if (flags[i]) {
      total += static_cast<double>(i) / static_cast<double>(flags.size() - 1);
      ++count;
    }
  }
  return count == 0 ? -1.0 : total / static_cast<double>(count);
}

std::vector<EdgeOrderRow> edge_order_rows(
    const graph::TimestampedGraph& g, std::span<const osn::NodeId> sybils,
    const std::vector<bool>& sybil_mask) {
  if (sybil_mask.size() != g.node_count()) {
    throw std::invalid_argument("edge_order: mask size mismatch");
  }
  std::vector<EdgeOrderRow> rows;
  rows.reserve(sybils.size());
  std::vector<graph::Neighbor> nbrs;
  for (osn::NodeId s : sybils) {
    const auto adjacency = g.neighbors(s);
    nbrs.assign(adjacency.begin(), adjacency.end());
    std::stable_sort(nbrs.begin(), nbrs.end(),
                     [](const graph::Neighbor& a, const graph::Neighbor& b) {
                       return a.created_at < b.created_at;
                     });
    EdgeOrderRow row;
    row.sybil = s;
    row.flags.reserve(nbrs.size());
    for (const graph::Neighbor& nb : nbrs) {
      row.flags.push_back(sybil_mask[nb.node]);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

EdgeOrderSummary summarize_edge_order(std::span<const EdgeOrderRow> rows,
                                      std::size_t run_threshold) {
  EdgeOrderSummary s;
  s.rows = rows.size();
  std::vector<double> positions;
  double position_total = 0.0;
  std::size_t position_rows = 0;
  for (const EdgeOrderRow& row : rows) {
    const std::size_t count = row.sybil_edge_count();
    if (count == 0) continue;
    ++s.rows_with_sybil_edges;
    if ((row.leading_sybil_run() >= std::min<std::size_t>(run_threshold,
                                                          row.degree()) &&
         row.degree() >= 2) ||
        row.longest_sybil_run() >= run_threshold) {
      ++s.intentional_rows;
    }
    const double mp = row.mean_sybil_position();
    if (mp >= 0.0) {
      position_total += mp;
      ++position_rows;
      for (std::size_t i = 0; i < row.flags.size(); ++i) {
        if (row.flags[i]) {
          positions.push_back(static_cast<double>(i) /
                              static_cast<double>(row.flags.size() - 1));
        }
      }
    }
  }
  s.mean_position =
      position_rows == 0 ? -1.0
                         : position_total / static_cast<double>(position_rows);

  if (!positions.empty()) {
    std::sort(positions.begin(), positions.end());
    double d = 0.0;
    const auto n = static_cast<double>(positions.size());
    for (std::size_t i = 0; i < positions.size(); ++i) {
      const double cdf_lo = static_cast<double>(i) / n;
      const double cdf_hi = static_cast<double>(i + 1) / n;
      d = std::max({d, std::abs(positions[i] - cdf_lo),
                    std::abs(positions[i] - cdf_hi)});
    }
    s.ks_statistic = d;
  }
  return s;
}

}  // namespace sybil::core
