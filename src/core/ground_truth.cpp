#include "core/ground_truth.h"

namespace sybil::core {

ml::Dataset build_ground_truth_dataset(
    const osn::Network& net, const std::vector<osn::NodeId>& normals,
    const std::vector<osn::NodeId>& sybils) {
  const FeatureExtractor extractor(net);
  ml::Dataset data(SybilFeatures::kFeatureCount);
  for (const SybilFeatures& f : extractor.extract(normals)) {
    data.add(f.as_vector(), ml::kNormalLabel);
  }
  for (const SybilFeatures& f : extractor.extract(sybils)) {
    data.add(f.as_vector(), ml::kSybilLabel);
  }
  return data;
}

FeatureColumns feature_columns(const osn::Network& net,
                               const std::vector<osn::NodeId>& accounts) {
  const FeatureExtractor extractor(net);
  const std::vector<SybilFeatures> features = extractor.extract(accounts);
  FeatureColumns cols;
  cols.invite_rate_short.reserve(accounts.size());
  for (const SybilFeatures& f : features) {
    cols.invite_rate_short.push_back(f.invite_rate_short);
    cols.invite_rate_long.push_back(f.invite_rate_long);
    cols.outgoing_accept.push_back(f.outgoing_accept_ratio);
    cols.incoming_accept.push_back(f.incoming_accept_ratio);
    cols.clustering.push_back(f.clustering_coefficient);
  }
  return cols;
}

}  // namespace sybil::core
