#include "core/parallel.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>

#include "core/metrics/instrument.h"

namespace sybil::core {

namespace {

std::size_t env_thread_count() {
  if (const char* env = std::getenv("SYBIL_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v >= 1 && v <= 4096) {
      return static_cast<std::size_t>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Set while the current thread is inside a chunk body; nested
/// parallel_for calls then degrade to sequential execution instead of
/// deadlocking on the job lock.
thread_local bool tls_in_parallel = false;

/// Persistent pool. Workers sleep on a condition variable between jobs;
/// a job is a chunk counter that workers (and the submitting thread)
/// drain cooperatively. One job runs at a time (run_mutex_).
class ThreadPool {
 public:
  static ThreadPool& instance() {
    static ThreadPool pool;
    return pool;
  }

  std::size_t thread_count() {
    std::lock_guard<std::mutex> lock(mutex_);
    return target_threads_;
  }

  void set_thread_count(std::size_t threads) {
    std::lock_guard<std::mutex> run_lock(run_mutex_);
    stop_workers();
    std::lock_guard<std::mutex> lock(mutex_);
    target_threads_ = threads == 0 ? env_thread_count() : threads;
  }

  void run(const std::vector<ChunkRange>& chunks,
           const std::function<void(const ChunkRange&)>& body) {
    if (chunks.size() <= 1 || tls_in_parallel || thread_count() <= 1) {
      run_inline(chunks, body);
      return;
    }
    std::lock_guard<std::mutex> run_lock(run_mutex_);
    ensure_workers();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_body_ = &body;
      job_chunks_ = &chunks;
      next_chunk_.store(0, std::memory_order_relaxed);
      pending_ = chunks.size();
      ++generation_;
    }
    wake_.notify_all();
    drain();  // the submitting thread works too
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] { return pending_ == 0 && active_ == 0; });
    job_body_ = nullptr;
    job_chunks_ = nullptr;
    if (error_) {
      auto err = error_;
      error_ = nullptr;
      lock.unlock();
      std::rethrow_exception(err);
    }
  }

  ~ThreadPool() { stop_workers(); }

 private:
  ThreadPool() : target_threads_(env_thread_count()) {}

  static void run_inline(const std::vector<ChunkRange>& chunks,
                         const std::function<void(const ChunkRange&)>& body) {
    const bool was_nested = tls_in_parallel;
    tls_in_parallel = true;
    try {
      for (const ChunkRange& c : chunks) body(c);
    } catch (...) {
      tls_in_parallel = was_nested;
      throw;
    }
    tls_in_parallel = was_nested;
  }

  void ensure_workers() {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t wanted = target_threads_ - 1;  // caller participates
    while (workers_.size() < wanted) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  /// Joins all workers. Caller must hold run_mutex_ (or be the
  /// destructor) so no job is in flight.
  void stop_workers() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
      ++generation_;
    }
    wake_.notify_all();
    for (std::thread& t : workers_) t.join();
    workers_.clear();
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = false;
  }

  void worker_loop() {
    std::uint64_t seen_generation = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [&] {
          return stopping_ || generation_ != seen_generation;
        });
        if (stopping_) return;
        seen_generation = generation_;
      }
      drain();
    }
  }

  /// Claims chunks until the counter runs dry. The active_ count keeps
  /// the job's chunk vector alive in run() until every drainer — even
  /// one that claimed no chunk — has let go of its pointers.
  void drain() {
    const std::function<void(const ChunkRange&)>* body;
    const std::vector<ChunkRange>* chunks;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      body = job_body_;
      chunks = job_chunks_;
      if (body == nullptr) return;  // late wakeup, job already gone
      ++active_;
    }
    const std::size_t count = chunks->size();
    std::size_t finished = 0;
    tls_in_parallel = true;
    for (;;) {
      const std::size_t i = next_chunk_.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) break;
      try {
        (*body)((*chunks)[i]);
      } catch (...) {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!error_) error_ = std::current_exception();
      }
      ++finished;
    }
    tls_in_parallel = false;
    std::lock_guard<std::mutex> lock(mutex_);
    pending_ -= finished;
    --active_;
    if (pending_ == 0 && active_ == 0) done_.notify_all();
  }

  std::mutex run_mutex_;  // serializes whole jobs
  std::mutex mutex_;      // guards everything below
  std::condition_variable wake_;
  std::condition_variable done_;
  std::vector<std::thread> workers_;
  std::size_t target_threads_;
  bool stopping_ = false;
  std::uint64_t generation_ = 0;

  const std::function<void(const ChunkRange&)>* job_body_ = nullptr;
  const std::vector<ChunkRange>* job_chunks_ = nullptr;
  std::atomic<std::size_t> next_chunk_{0};
  std::size_t pending_ = 0;
  std::size_t active_ = 0;
  std::exception_ptr error_;
};

}  // namespace

std::size_t thread_count() { return ThreadPool::instance().thread_count(); }

void set_thread_count(std::size_t threads) {
  ThreadPool::instance().set_thread_count(threads);
}

std::vector<ChunkRange> chunk_partition(std::size_t n, std::size_t grain) {
  std::vector<ChunkRange> chunks;
  if (n == 0) return chunks;
  const std::size_t count =
      grain == 0 ? std::min(n, kDefaultChunks) : (n + grain - 1) / grain;
  chunks.reserve(count);
  const std::size_t q = n / count, r = n % count;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t begin =
        grain == 0 ? i * q + std::min(i, r) : i * grain;
    const std::size_t end = grain == 0
                                ? (i + 1) * q + std::min(i + 1, r)
                                : std::min(n, (i + 1) * grain);
    chunks.push_back({begin, end, i});
  }
  return chunks;
}

void parallel_for(std::size_t n,
                  const std::function<void(const ChunkRange&)>& body,
                  std::size_t grain) {
  const auto chunks = chunk_partition(n, grain);
  if (chunks.empty()) return;
  // Per-job accounting only — per-chunk work pays nothing. Job and
  // chunk counts are pure functions of (n, grain), so these metrics are
  // identical for any SYBIL_THREADS.
  SYBIL_METRIC_COUNT("parallel.jobs", 1);
  SYBIL_METRIC_COUNT("parallel.chunks", chunks.size());
  SYBIL_METRIC_OBSERVE("parallel.chunks_per_job", chunks.size());
  ThreadPool::instance().run(chunks, body);
}

stats::Rng chunk_rng(std::uint64_t master_seed, std::uint64_t stream) noexcept {
  // Decorrelate the stream id from the master seed with the splitmix64
  // increment, then whiten once before seeding (Rng's constructor runs
  // splitmix again over the full 256-bit state).
  std::uint64_t state = master_seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
  return stats::Rng(stats::splitmix64_next(state));
}

}  // namespace sybil::core
