#include "core/threshold_detector.h"

namespace sybil::core {

bool ThresholdDetector::is_sybil(const SybilFeatures& f,
                                 std::uint32_t requests_sent) const {
  if (requests_sent < rule_.min_requests) return false;
  return f.outgoing_accept_ratio < rule_.outgoing_accept_max &&
         f.invite_rate_short >= rule_.invite_rate_min &&
         f.clustering_coefficient < rule_.clustering_max;
}

}  // namespace sybil::core
