// Real-time Sybil detection pipeline (Section 2.3).
//
// Deployed form of the threshold detector: it periodically sweeps the
// accounts that have been active since the last sweep, extracts the four
// features, applies the (optionally adaptively tuned) threshold rule,
// and reports accounts to flag. Renren's workflow — flag, manual
// verification, ban, feedback into the tuner — is modeled by the caller
// confirming flags back into the pipeline.
//
// Observability: each sweep runs under a "realtime.sweep" span and
// bumps candidate/flag counters; confirmations and retunes are counted
// too. Collection never affects verdicts or tuner state.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/adaptive.h"
#include "core/detector.h"
#include "core/detector_options.h"
#include "core/features.h"
#include "core/threshold_detector.h"
#include "osn/network.h"

namespace sybil::core {

/// Deprecated alias kept for one release: the real-time path now shares
/// DetectorOptions with the streaming path.
using RealTimeConfig [[deprecated("use sybil::core::DetectorOptions")]] =
    DetectorOptions;

class RealTimeDetector {
 public:
  /// Throws std::invalid_argument if `options` fails validate().
  explicit RealTimeDetector(const DetectorOptions& options = {});

  /// Evaluates `candidates` against the current rule using a fresh
  /// feature snapshot of `net`. Returns the newly flagged accounts with
  /// the features the rule fired on, stamped with `now` (accounts
  /// flagged in earlier sweeps are skipped).
  FlagBatch sweep(const osn::Network& net,
                  const std::vector<osn::NodeId>& candidates,
                  graph::Time now = 0.0);

  /// Manual-verification feedback: the account's features at flag time
  /// plus the verdict. Drives the adaptive tuner.
  void confirm(const SybilFeatures& features, bool confirmed_sybil);

  const ThresholdRule& rule() const noexcept { return detector_.rule(); }
  std::size_t flagged_count() const noexcept { return flagged_.size(); }
  bool already_flagged(osn::NodeId id) const {
    return flagged_.contains(id);
  }

 private:
  DetectorOptions options_;
  ThresholdDetector detector_;
  AdaptiveThresholdTuner tuner_;
  std::unordered_set<osn::NodeId> flagged_;
  std::size_t confirmations_ = 0;
};

}  // namespace sybil::core
