// Real-time Sybil detection pipeline (Section 2.3).
//
// Deployed form of the threshold detector: it periodically sweeps the
// accounts that have been active since the last sweep, extracts the four
// features, applies the (optionally adaptively tuned) threshold rule,
// and reports accounts to flag. Renren's workflow — flag, manual
// verification, ban, feedback into the tuner — is modeled by the caller
// confirming flags back into the pipeline.
//
// Degraded mode: a sweep may be budgeted (DetectorOptions::sweep_budget
// caps evaluated candidates; sweep_deadline_millis caps wall-clock).
// Candidates the budget cuts off are carried over, in order, to the
// next sweep — a slow sweep degrades into several bounded sweeps
// instead of stalling the pipeline, and the union of flags over
// successive sweeps equals the single unbudgeted sweep (tested in
// realtime_test.cpp). At least one candidate is always evaluated per
// sweep, so progress is guaranteed.
//
// Observability: each sweep runs under a "realtime.sweep" span and
// bumps candidate/flag counters; budget cut-offs and the carry-over
// backlog are visible as "realtime.sweep.deadline_hits" and
// "realtime.sweep.carryover". Collection never affects verdicts or
// tuner state.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/adaptive.h"
#include "core/detector.h"
#include "core/detector_options.h"
#include "core/features.h"
#include "core/threshold_detector.h"
#include "osn/network.h"

namespace sybil::core {

class RealTimeDetector {
 public:
  /// Throws std::invalid_argument if `options` fails validate().
  explicit RealTimeDetector(const DetectorOptions& options = {});

  /// Evaluates carried-over candidates from earlier budget-cut sweeps,
  /// then `candidates`, against the current rule using a fresh feature
  /// snapshot of `net`. Returns the newly flagged accounts with the
  /// features the rule fired on, stamped with `now` (accounts flagged
  /// in earlier sweeps are skipped). Candidates beyond the sweep
  /// budget/deadline are queued for the next sweep.
  FlagBatch sweep(const osn::Network& net,
                  const std::vector<osn::NodeId>& candidates,
                  graph::Time now = 0.0);

  /// Manual-verification feedback: the account's features at flag time
  /// plus the verdict. Drives the adaptive tuner.
  void confirm(const SybilFeatures& features, bool confirmed_sybil);

  const ThresholdRule& rule() const noexcept { return detector_.rule(); }
  std::size_t flagged_count() const noexcept { return flagged_.size(); }
  bool already_flagged(osn::NodeId id) const {
    return flagged_.contains(id);
  }
  /// Candidates awaiting the next sweep after a budget/deadline cut.
  std::size_t carryover_count() const noexcept { return carryover_.size(); }

 private:
  /// Checkpoint codec (core/detector_state.h): serializes flag/carryover
  /// sets and the tuner so a recovered pipeline resumes byte-identically.
  friend struct DetectorStateAccess;

  DetectorOptions options_;
  ThresholdDetector detector_;
  AdaptiveThresholdTuner tuner_;
  std::unordered_set<osn::NodeId> flagged_;
  /// Budget-cut candidates, in cut order; carryover_set_ mirrors it so
  /// re-submitted candidates are not queued twice.
  std::vector<osn::NodeId> carryover_;
  std::unordered_set<osn::NodeId> carryover_set_;
  std::size_t confirmations_ = 0;
};

}  // namespace sybil::core
