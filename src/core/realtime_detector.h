// Real-time Sybil detection pipeline (Section 2.3).
//
// Deployed form of the threshold detector: it periodically sweeps the
// accounts that have been active since the last sweep, extracts the four
// features, applies the (optionally adaptively tuned) threshold rule,
// and reports accounts to flag. Renren's workflow — flag, manual
// verification, ban, feedback into the tuner — is modeled by the caller
// confirming flags back into the pipeline.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/adaptive.h"
#include "core/features.h"
#include "core/threshold_detector.h"
#include "osn/network.h"

namespace sybil::core {

struct RealTimeConfig {
  ThresholdRule rule{};
  bool adaptive = true;
  AdaptiveConfig tuner{};
  /// Retune after this many confirmations.
  std::size_t retune_every = 200;
};

class RealTimeDetector {
 public:
  explicit RealTimeDetector(RealTimeConfig config = {});

  /// Evaluates `candidates` against the current rule using a fresh
  /// feature snapshot of `net`. Returns newly flagged account ids
  /// (accounts flagged in earlier sweeps are skipped).
  std::vector<osn::NodeId> sweep(const osn::Network& net,
                                 const std::vector<osn::NodeId>& candidates);

  /// Manual-verification feedback: the account's features at flag time
  /// plus the verdict. Drives the adaptive tuner.
  void confirm(const SybilFeatures& features, bool confirmed_sybil);

  const ThresholdRule& rule() const noexcept { return detector_.rule(); }
  std::size_t flagged_count() const noexcept { return flagged_.size(); }
  bool already_flagged(osn::NodeId id) const {
    return flagged_.contains(id);
  }

 private:
  RealTimeConfig config_;
  ThresholdDetector detector_;
  AdaptiveThresholdTuner tuner_;
  std::unordered_set<osn::NodeId> flagged_;
  std::size_t confirmations_ = 0;
};

}  // namespace sybil::core
