// Temporal analysis of Sybil edge creation order (Section 3.4, Fig 8).
//
// For each Sybil we build its chronological friend sequence and mark
// which positions are Sybil edges. If attackers created Sybil edges
// intentionally, those positions would cluster at the start of the
// sequence (fleet wired before targeting begins) — a "vertical line" in
// Fig 8. Accidental edges land uniformly at random. Both the per-Sybil
// flag rows (the figure) and summary statistics (uniformity of
// positions, intentional-run detection) are provided.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "osn/network.h"

namespace sybil::core {

/// One Sybil's chronological edge sequence: flags[i] is true when the
/// i-th friend (by edge creation time) is another Sybil.
struct EdgeOrderRow {
  osn::NodeId sybil;
  std::vector<bool> flags;

  std::size_t degree() const noexcept { return flags.size(); }
  std::size_t sybil_edge_count() const;
  /// Longest run of consecutive Sybil-edge positions.
  std::size_t longest_sybil_run() const;
  /// Leading run of Sybil edges (fleet-wiring signature).
  std::size_t leading_sybil_run() const;
  /// Mean normalized position (0..1) of Sybil edges; ≈0.5 when placed
  /// uniformly at random. Returns -1 when there are no Sybil edges.
  double mean_sybil_position() const;
};

/// Builds rows for the given Sybils. Each neighbor list is sorted by
/// creation time. `sybil_mask` must cover all node ids of the graph.
std::vector<EdgeOrderRow> edge_order_rows(
    const graph::TimestampedGraph& g, std::span<const osn::NodeId> sybils,
    const std::vector<bool>& sybil_mask);

inline std::vector<EdgeOrderRow> edge_order_rows(
    const osn::Network& net, std::span<const osn::NodeId> sybils,
    const std::vector<bool>& sybil_mask) {
  return edge_order_rows(net.graph(), sybils, sybil_mask);
}

/// Summary over a set of rows.
struct EdgeOrderSummary {
  std::size_t rows = 0;
  std::size_t rows_with_sybil_edges = 0;
  /// Rows flagged as intentional: a leading run or any run of at least
  /// `run_threshold` Sybil edges.
  std::size_t intentional_rows = 0;
  /// Mean of mean_sybil_position over rows with Sybil edges.
  double mean_position = 0.0;
  /// One-sample Kolmogorov-Smirnov statistic of all normalized Sybil-
  /// edge positions against Uniform(0,1). Small (≲0.05 at this sample
  /// size) is consistent with accidental placement.
  double ks_statistic = 0.0;
};

EdgeOrderSummary summarize_edge_order(std::span<const EdgeOrderRow> rows,
                                      std::size_t run_threshold = 3);

}  // namespace sybil::core
