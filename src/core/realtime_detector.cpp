#include "core/realtime_detector.h"

namespace sybil::core {

RealTimeDetector::RealTimeDetector(RealTimeConfig config)
    : config_(config), detector_(config.rule), tuner_([&] {
        AdaptiveConfig t = config.tuner;
        t.initial = config.rule;
        return t;
      }()) {}

std::vector<osn::NodeId> RealTimeDetector::sweep(
    const osn::Network& net, const std::vector<osn::NodeId>& candidates) {
  const FeatureExtractor extractor(net);
  std::vector<osn::NodeId> newly_flagged;
  for (osn::NodeId id : candidates) {
    if (flagged_.contains(id) || net.account(id).banned()) continue;
    const SybilFeatures f = extractor.extract(id);
    if (detector_.is_sybil(f, net.ledger(id).sent())) {
      flagged_.insert(id);
      newly_flagged.push_back(id);
    }
  }
  return newly_flagged;
}

void RealTimeDetector::confirm(const SybilFeatures& features,
                               bool confirmed_sybil) {
  if (!config_.adaptive) return;
  tuner_.observe(features, confirmed_sybil);
  if (++confirmations_ % config_.retune_every == 0) {
    detector_.set_rule(tuner_.retune());
  }
}

}  // namespace sybil::core
