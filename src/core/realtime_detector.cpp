#include "core/realtime_detector.h"

#include <chrono>

#include "core/metrics/instrument.h"

namespace sybil::core {

RealTimeDetector::RealTimeDetector(const DetectorOptions& options)
    : options_([&] {
        options.validate();  // reject nonsense before any member is built
        return options;
      }()),
      detector_(options.rule), tuner_([&] {
        AdaptiveConfig t = options.tuner;
        t.initial = options.rule;
        return t;
      }()) {}

FlagBatch RealTimeDetector::sweep(const osn::Network& net,
                                  const std::vector<osn::NodeId>& candidates,
                                  graph::Time now) {
  SYBIL_METRIC_SCOPED_TIMER(span, "realtime.sweep");
  SYBIL_METRIC_COUNT("realtime.candidates", candidates.size());
  const FeatureExtractor extractor(net, /*long_window_hours=*/400.0,
                                   options_.first_friends);

  // Work list: carried-over candidates first (they have waited longest),
  // then the new batch minus anything already queued or already flagged
  // — re-submitted stale candidates must not clog the carry-over queue.
  std::vector<osn::NodeId> work = std::move(carryover_);
  carryover_.clear();
  work.reserve(work.size() + candidates.size());
  for (osn::NodeId id : candidates) {
    if (carryover_set_.contains(id) || flagged_.contains(id)) continue;
    work.push_back(id);
  }
  carryover_set_.clear();

  const bool deadline_enabled = options_.sweep_deadline_millis > 0.0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(
              options_.sweep_deadline_millis));

  FlagBatch newly_flagged;
  std::size_t evaluated = 0;
  std::size_t i = 0;
  for (; i < work.size(); ++i) {
    // Budget checks come first but never before the first evaluation:
    // a sweep always makes progress.
    if (evaluated > 0) {
      if (options_.sweep_budget > 0 && evaluated >= options_.sweep_budget) {
        break;
      }
      if (deadline_enabled && std::chrono::steady_clock::now() >= deadline) {
        break;
      }
    }
    const osn::NodeId id = work[i];
    if (flagged_.contains(id) || net.account(id).banned()) continue;
    ++evaluated;
    const SybilFeatures f = extractor.extract(id);
    if (detector_.is_sybil(f, net.ledger(id).sent())) {
      flagged_.insert(id);
      newly_flagged.records.push_back(FlagRecord{id, f, now});
    }
  }
  SYBIL_METRIC_COUNT("realtime.sweep.evaluated", evaluated);

  if (i < work.size()) {
    SYBIL_METRIC_COUNT("realtime.sweep.deadline_hits", 1);
    for (; i < work.size(); ++i) {
      if (carryover_set_.insert(work[i]).second) {
        carryover_.push_back(work[i]);
      }
    }
    SYBIL_METRIC_COUNT("realtime.sweep.carryover_total", carryover_.size());
  }
  SYBIL_METRIC_GAUGE_SET("realtime.sweep.carryover", carryover_.size());

  SYBIL_METRIC_COUNT("realtime.flagged", newly_flagged.size());
  SYBIL_METRIC_OBSERVE("realtime.flagged_per_sweep", newly_flagged.size());
  return newly_flagged;
}

void RealTimeDetector::confirm(const SybilFeatures& features,
                               bool confirmed_sybil) {
  if (!options_.adaptive) return;
  SYBIL_METRIC_COUNT("realtime.confirmations", 1);
  tuner_.observe(features, confirmed_sybil);
  if (++confirmations_ % options_.retune_every == 0) {
    SYBIL_METRIC_COUNT("realtime.retunes", 1);
    detector_.set_rule(tuner_.retune());
  }
}

}  // namespace sybil::core
