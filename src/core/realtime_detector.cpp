#include "core/realtime_detector.h"

#include "core/metrics/instrument.h"

namespace sybil::core {

RealTimeDetector::RealTimeDetector(const DetectorOptions& options)
    : options_([&] {
        options.validate();  // reject nonsense before any member is built
        return options;
      }()),
      detector_(options.rule), tuner_([&] {
        AdaptiveConfig t = options.tuner;
        t.initial = options.rule;
        return t;
      }()) {}

FlagBatch RealTimeDetector::sweep(const osn::Network& net,
                                  const std::vector<osn::NodeId>& candidates,
                                  graph::Time now) {
  SYBIL_METRIC_SCOPED_TIMER(span, "realtime.sweep");
  SYBIL_METRIC_COUNT("realtime.candidates", candidates.size());
  const FeatureExtractor extractor(net, /*long_window_hours=*/400.0,
                                   options_.first_friends);
  FlagBatch newly_flagged;
  for (osn::NodeId id : candidates) {
    if (flagged_.contains(id) || net.account(id).banned()) continue;
    const SybilFeatures f = extractor.extract(id);
    if (detector_.is_sybil(f, net.ledger(id).sent())) {
      flagged_.insert(id);
      newly_flagged.records.push_back(FlagRecord{id, f, now});
    }
  }
  SYBIL_METRIC_COUNT("realtime.flagged", newly_flagged.size());
  SYBIL_METRIC_OBSERVE("realtime.flagged_per_sweep", newly_flagged.size());
  return newly_flagged;
}

void RealTimeDetector::confirm(const SybilFeatures& features,
                               bool confirmed_sybil) {
  if (!options_.adaptive) return;
  SYBIL_METRIC_COUNT("realtime.confirmations", 1);
  tuner_.observe(features, confirmed_sybil);
  if (++confirmations_ % options_.retune_every == 0) {
    SYBIL_METRIC_COUNT("realtime.retunes", 1);
    detector_.set_rule(tuner_.retune());
  }
}

}  // namespace sybil::core
