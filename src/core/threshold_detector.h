// The paper's threshold-based Sybil classifier.
//
// Section 2.3: an account is flagged as a Sybil when
//   outgoing-accept ratio < 0.5  AND  invitation frequency exceeds 20/hr
//   AND clustering coefficient < 0.01.
// (The paper's inline formula prints "frequency < 20", but Fig 1 and the
// surrounding text — "accounts sending more than 20 invites per time
// interval are Sybils" — make clear the rule fires on HIGH frequency;
// we implement it that way and note the typo in EXPERIMENTS.md.)
//
// An account with insufficient activity is never flagged (min_requests
// guards the ratios against tiny denominators).
#pragma once

#include <cstdint>

#include "core/features.h"

namespace sybil::core {

struct ThresholdRule {
  double outgoing_accept_max = 0.5;
  double invite_rate_min = 20.0;  // invites per hour (short window)
  double clustering_max = 0.01;
  /// Minimum outgoing requests before the ratios are trusted.
  std::uint32_t min_requests = 10;
};

class ThresholdDetector {
 public:
  explicit ThresholdDetector(ThresholdRule rule = {}) : rule_(rule) {}

  /// True if the features cross all three Sybil thresholds.
  bool is_sybil(const SybilFeatures& f, std::uint32_t requests_sent) const;

  /// Convenience when activity counts are unavailable: assumes the
  /// min-requests guard is satisfied.
  bool is_sybil(const SybilFeatures& f) const {
    return is_sybil(f, rule_.min_requests);
  }

  const ThresholdRule& rule() const noexcept { return rule_; }
  void set_rule(const ThresholdRule& rule) noexcept { rule_ = rule; }

 private:
  ThresholdRule rule_;
};

}  // namespace sybil::core
