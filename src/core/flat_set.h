// Open-addressing set of 64-bit keys for the streaming hot path.
//
// StreamDetector does two set probes per ingested event (sequence dedup
// and edge dedup). node-based std::unordered_set pays a heap allocation
// per insert and a pointer chase per probe; this flat table keeps keys
// in one contiguous power-of-two array with linear probing, so a probe
// is a hash, a mask and a short cache-line scan. Deletion uses backward
// shifting, so no tombstones accumulate (seen_seqs_ is pruned
// continuously as the watermark advances).
//
// The all-ones key (which the detector reserves as a sentinel anyway,
// but edge keys could produce) is representable: it is tracked by a
// side flag instead of occupying a slot, because ~0 marks empty slots.
//
// Iteration order is unspecified — every serialization site sorts into
// a vector before writing (see detector_state.cpp), so checkpoints are
// byte-identical regardless of insertion history.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <vector>

namespace sybil::core {

class FlatSet64 {
 public:
  FlatSet64() = default;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  void clear() {
    slots_.assign(slots_.size(), kEmpty);
    size_ = 0;
    has_empty_key_ = false;
  }

  void reserve(std::size_t n) {
    // Capacity keeps load factor <= 1/2.
    std::size_t want = 16;
    while (want < n * 2) want <<= 1;
    if (want > slots_.size()) rehash(want);
  }

  bool contains(std::uint64_t key) const noexcept {
    if (key == kEmpty) return has_empty_key_;
    if (slots_.empty()) return false;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = hash(key) & mask;; i = (i + 1) & mask) {
      const std::uint64_t s = slots_[i];
      if (s == key) return true;
      if (s == kEmpty) return false;
    }
  }

  /// Returns true when the key was newly inserted.
  bool insert(std::uint64_t key) {
    if (key == kEmpty) {
      const bool fresh = !has_empty_key_;
      has_empty_key_ = true;
      size_ += fresh ? 1 : 0;
      return fresh;
    }
    if (slots_.size() < (size_ + 1) * 2) {
      rehash(slots_.empty() ? 16 : slots_.size() * 2);
    }
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash(key) & mask;
    while (slots_[i] != kEmpty) {
      if (slots_[i] == key) return false;
      i = (i + 1) & mask;
    }
    slots_[i] = key;
    ++size_;
    return true;
  }

  /// Returns 1 when the key was present and removed, 0 otherwise
  /// (matching std::unordered_set::erase). Backward-shift deletion
  /// keeps probe chains intact without tombstones.
  std::size_t erase(std::uint64_t key) {
    if (key == kEmpty) {
      if (!has_empty_key_) return 0;
      has_empty_key_ = false;
      --size_;
      return 1;
    }
    if (slots_.empty()) return 0;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash(key) & mask;
    while (slots_[i] != key) {
      if (slots_[i] == kEmpty) return 0;
      i = (i + 1) & mask;
    }
    // Shift the rest of the probe chain back over the hole.
    std::size_t hole = i;
    for (std::size_t j = (hole + 1) & mask; slots_[j] != kEmpty;
         j = (j + 1) & mask) {
      const std::size_t home = hash(slots_[j]) & mask;
      // Move slots_[j] into the hole unless its home position lies
      // (cyclically) after the hole — then it is already reachable.
      const bool movable = hole <= j ? (home <= hole || home > j)
                                     : (home <= hole && home > j);
      if (movable) {
        slots_[hole] = slots_[j];
        hole = j;
      }
    }
    slots_[hole] = kEmpty;
    --size_;
    return 1;
  }

  /// Forward iteration over stored keys, unspecified order. Satisfies
  /// the serialization sites' `for (auto k : set)` usage.
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = std::uint64_t;
    using difference_type = std::ptrdiff_t;
    using pointer = const std::uint64_t*;
    using reference = std::uint64_t;

    const_iterator(const FlatSet64* set, std::size_t pos)
        : set_(set), pos_(pos) {
      skip();
    }
    std::uint64_t operator*() const {
      return pos_ < set_->slots_.size() ? set_->slots_[pos_] : kEmpty;
    }
    const_iterator& operator++() {
      ++pos_;
      skip();
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator prev = *this;
      ++*this;
      return prev;
    }
    bool operator==(const const_iterator& o) const noexcept {
      return pos_ == o.pos_;
    }
    bool operator!=(const const_iterator& o) const noexcept {
      return pos_ != o.pos_;
    }

   private:
    void skip() {
      const std::size_t n = set_->slots_.size();
      while (pos_ < n && set_->slots_[pos_] == kEmpty) ++pos_;
      // Position n is the pseudo-slot for the reserved all-ones key;
      // n + 1 is end().
      if (pos_ == n && !set_->has_empty_key_) ++pos_;
    }
    const FlatSet64* set_;
    std::size_t pos_;
  };

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const {
    return const_iterator(this, slots_.size() + 1);
  }

 private:
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  /// splitmix64 finalizer: full-avalanche mix so sequential seqs and
  /// packed edge keys spread across the table.
  static std::uint64_t hash(std::uint64_t x) noexcept {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
  }

  void rehash(std::size_t new_cap) {
    std::vector<std::uint64_t> old = std::move(slots_);
    slots_.assign(new_cap, kEmpty);
    const std::size_t mask = new_cap - 1;
    for (std::uint64_t key : old) {
      if (key == kEmpty) continue;
      std::size_t i = hash(key) & mask;
      while (slots_[i] != kEmpty) i = (i + 1) & mask;
      slots_[i] = key;
    }
  }

  std::vector<std::uint64_t> slots_;
  std::size_t size_ = 0;
  bool has_empty_key_ = false;
};

// Set of 64-bit sequence numbers, specialized for the near-monotone
// streams the detector actually sees. Seqs are grouped into 64-wide
// words: the table maps word index -> occupancy bitmask, so 64
// consecutive seqs share one slot (and one cache line) instead of being
// scattered by a full-avalanche hash the way FlatSet64 spreads them.
// A one-entry position cache makes the common case — the next seq lands
// in the same word as the last one — a single compare, no hash at all.
//
// Semantics match FlatSet64 (insert -> bool, erase -> 0/1, unspecified
// iteration order; serialization sites sort before writing). The probe
// table stores word_index + 1 so 0 can mark empty slots; word indexes
// top out at 2^58, so the +1 cannot wrap.
class SeqBitSet {
 public:
  SeqBitSet() = default;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  void clear() {
    slots_.assign(slots_.size(), Slot{});
    words_ = 0;
    size_ = 0;
    cached_ = 0;
  }

  /// Sizes the table for roughly `n` seqs assuming moderately dense
  /// packing (a heuristic — growth handles sparser streams).
  void reserve(std::size_t n) {
    std::size_t want = 16;
    while (want < (n / 8 + 1) * 2) want <<= 1;
    if (want > slots_.size()) rehash(want);
  }

  bool contains(std::uint64_t seq) const noexcept {
    const std::uint64_t wkey = (seq >> 6) + 1;
    const std::uint64_t bit = std::uint64_t{1} << (seq & 63);
    if (slots_.empty()) return false;
    if (slots_[cached_].word == wkey) return (slots_[cached_].bits & bit) != 0;
    const std::size_t mask = slots_.size() - 1;
    for (std::size_t i = hash(wkey) & mask;; i = (i + 1) & mask) {
      if (slots_[i].word == wkey) {
        cached_ = i;
        return (slots_[i].bits & bit) != 0;
      }
      if (slots_[i].word == 0) return false;
    }
  }

  /// Returns true when the seq was newly inserted.
  bool insert(std::uint64_t seq) {
    const std::uint64_t wkey = (seq >> 6) + 1;
    const std::uint64_t bit = std::uint64_t{1} << (seq & 63);
    if (!slots_.empty() && slots_[cached_].word == wkey) {
      if (slots_[cached_].bits & bit) return false;
      slots_[cached_].bits |= bit;
      ++size_;
      return true;
    }
    // Grow for a potential new word before probing (load <= 1/2 on
    // occupied word slots; growing when the word turns out to exist
    // just advances the next rehash, it does not change behaviour).
    if (slots_.size() < (words_ + 1) * 2) {
      rehash(slots_.empty() ? 16 : slots_.size() * 2);
    }
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash(wkey) & mask;
    while (slots_[i].word != 0) {
      if (slots_[i].word == wkey) {
        cached_ = i;
        if (slots_[i].bits & bit) return false;
        slots_[i].bits |= bit;
        ++size_;
        return true;
      }
      i = (i + 1) & mask;
    }
    slots_[i] = Slot{wkey, bit};
    cached_ = i;
    ++words_;
    ++size_;
    return true;
  }

  /// Returns 1 when the seq was present and removed, 0 otherwise.
  std::size_t erase(std::uint64_t seq) {
    const std::uint64_t wkey = (seq >> 6) + 1;
    const std::uint64_t bit = std::uint64_t{1} << (seq & 63);
    if (slots_.empty()) return 0;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = hash(wkey) & mask;
    while (slots_[i].word != wkey) {
      if (slots_[i].word == 0) return 0;
      i = (i + 1) & mask;
    }
    if (!(slots_[i].bits & bit)) return 0;
    slots_[i].bits &= ~bit;
    --size_;
    if (slots_[i].bits == 0) {
      // Backward-shift the probe chain over the emptied word slot.
      std::size_t hole = i;
      for (std::size_t j = (hole + 1) & mask; slots_[j].word != 0;
           j = (j + 1) & mask) {
        const std::size_t home = hash(slots_[j].word) & mask;
        const bool movable = hole <= j ? (home <= hole || home > j)
                                       : (home <= hole && home > j);
        if (movable) {
          slots_[hole] = slots_[j];
          hole = j;
        }
      }
      slots_[hole] = Slot{};
      --words_;
      cached_ = 0;
    }
    return 1;
  }

  /// Forward iteration over stored seqs, unspecified order.
  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = std::uint64_t;
    using difference_type = std::ptrdiff_t;
    using pointer = const std::uint64_t*;
    using reference = std::uint64_t;

    const_iterator(const SeqBitSet* set, std::size_t pos)
        : set_(set), pos_(pos) {
      settle();
    }
    std::uint64_t operator*() const {
      return (set_->slots_[pos_].word - 1) * 64 +
             static_cast<std::uint64_t>(std::countr_zero(bits_));
    }
    const_iterator& operator++() {
      bits_ &= bits_ - 1;
      if (bits_ == 0) {
        ++pos_;
        settle();
      }
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator prev = *this;
      ++*this;
      return prev;
    }
    bool operator==(const const_iterator& o) const noexcept {
      return pos_ == o.pos_ && bits_ == o.bits_;
    }
    bool operator!=(const const_iterator& o) const noexcept {
      return !(*this == o);
    }

   private:
    void settle() {
      const std::size_t n = set_->slots_.size();
      while (pos_ < n && set_->slots_[pos_].word == 0) ++pos_;
      bits_ = pos_ < n ? set_->slots_[pos_].bits : 0;
    }
    const SeqBitSet* set_;
    std::size_t pos_;
    std::uint64_t bits_ = 0;
  };

  const_iterator begin() const { return const_iterator(this, 0); }
  const_iterator end() const { return const_iterator(this, slots_.size()); }

 private:
  struct Slot {
    std::uint64_t word = 0;  // word index + 1; 0 = empty
    std::uint64_t bits = 0;
  };

  static std::uint64_t hash(std::uint64_t x) noexcept {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
  }

  void rehash(std::size_t new_cap) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_cap, Slot{});
    const std::size_t mask = new_cap - 1;
    for (const Slot& s : old) {
      if (s.word == 0) continue;
      std::size_t i = hash(s.word) & mask;
      while (slots_[i].word != 0) i = (i + 1) & mask;
      slots_[i] = s;
    }
    cached_ = 0;
  }

  std::vector<Slot> slots_;
  std::size_t words_ = 0;  // occupied slots (distinct words)
  std::size_t size_ = 0;   // stored seqs (set bits)
  /// Last slot touched; slot 0's word is never equal to a real word key
  /// when it is empty, so a stale cache can only miss, never lie.
  mutable std::size_t cached_ = 0;
};

}  // namespace sybil::core
