#include "core/detector_state.h"

#include <algorithm>
#include <array>
#include <cstdint>
#include <string>

#include "core/realtime_detector.h"
#include "core/stream_detector.h"
#include "io/container.h"
#include "io/error.h"

namespace sybil::core {

namespace {

using io::ByteReader;
using io::ByteWriter;
using io::SnapshotError;
using io::SnapshotErrorCode;

void check_version(std::uint32_t version, const char* what) {
  // Exact match: v2 redefined the seen-by-time section (released-only
  // prune queue instead of the full accepted-seq heap), so a v1 blob
  // cannot be reinterpreted — and nothing writes v1 anymore.
  if (version != kDetectorStateVersion) {
    throw SnapshotError(SnapshotErrorCode::kUnsupportedVersion,
                        std::string(what) + " state v" +
                            std::to_string(version) +
                            " incompatible with supported v" +
                            std::to_string(kDetectorStateVersion));
  }
}

/// Bound for element counts read from untrusted blobs: any count a real
/// checkpoint produces is far below this; a corrupted count above it is
/// rejected before a multi-gigabyte allocation is attempted. ByteReader
/// still bounds-checks every element read.
constexpr std::uint64_t kSaneCount = std::uint64_t{1} << 32;

std::uint64_t read_count(ByteReader& r, const char* what) {
  const auto n = r.read<std::uint64_t>();
  if (n > kSaneCount) {
    throw SnapshotError(SnapshotErrorCode::kFormatViolation,
                        std::string(what) + " count " + std::to_string(n) +
                            " implausibly large");
  }
  return n;
}

void write_event(ByteWriter& w, const osn::Event& e) {
  w.write(static_cast<std::uint32_t>(e.type));
  w.write(e.actor);
  w.write(e.subject);
  w.write(e.time);
}

osn::Event read_event(ByteReader& r) {
  osn::Event e;
  e.type = static_cast<osn::EventType>(r.read<std::uint32_t>());
  e.actor = r.read<graph::NodeId>();
  e.subject = r.read<graph::NodeId>();
  e.time = r.read<graph::Time>();
  return e;
}

void write_features(ByteWriter& w, const SybilFeatures& f) {
  w.write(f.invite_rate_short);
  w.write(f.invite_rate_long);
  w.write(f.outgoing_accept_ratio);
  w.write(f.incoming_accept_ratio);
  w.write(f.clustering_coefficient);
}

SybilFeatures read_features(ByteReader& r) {
  SybilFeatures f;
  f.invite_rate_short = r.read<double>();
  f.invite_rate_long = r.read<double>();
  f.outgoing_accept_ratio = r.read<double>();
  f.incoming_accept_ratio = r.read<double>();
  f.clustering_coefficient = r.read<double>();
  return f;
}

void write_rule(ByteWriter& w, const ThresholdRule& rule) {
  w.write(rule.outgoing_accept_max);
  w.write(rule.invite_rate_min);
  w.write(rule.clustering_max);
  w.write(rule.min_requests);
}

ThresholdRule read_rule(ByteReader& r) {
  ThresholdRule rule;
  rule.outgoing_accept_max = r.read<double>();
  rule.invite_rate_min = r.read<double>();
  rule.clustering_max = r.read<double>();
  rule.min_requests = r.read<std::uint32_t>();
  return rule;
}

void write_ledger(ByteWriter& w, const osn::RequestLedger& ledger) {
  const osn::RequestLedger::Raw raw = ledger.raw();
  w.write(raw.sent);
  w.write(raw.sent_accepted);
  w.write(raw.received);
  w.write(raw.received_accepted);
  w.write(raw.current_bucket);
  w.write(raw.current_bucket_count);
  w.write(raw.active_hours);
  w.write(raw.max_hourly);
  w.write(raw.first_send);
  w.write(raw.last_send);
}

osn::RequestLedger read_ledger(ByteReader& r) {
  osn::RequestLedger::Raw raw;
  raw.sent = r.read<std::uint32_t>();
  raw.sent_accepted = r.read<std::uint32_t>();
  raw.received = r.read<std::uint32_t>();
  raw.received_accepted = r.read<std::uint32_t>();
  raw.current_bucket = r.read<std::int64_t>();
  raw.current_bucket_count = r.read<std::uint32_t>();
  raw.active_hours = r.read<std::uint32_t>();
  raw.max_hourly = r.read<std::uint32_t>();
  raw.first_send = r.read<graph::Time>();
  raw.last_send = r.read<graph::Time>();
  return osn::RequestLedger::from_raw(raw);
}

/// Grants access to a std::priority_queue's protected container so the
/// exact heap array can be saved and restored — a restored queue pops
/// in the same order as the original, bit for bit (the osn simulator
/// checkpoint uses the same trick).
template <typename Q>
const typename Q::container_type& queue_container(const Q& q) {
  struct Access : Q {
    static const typename Q::container_type& get(const Q& queue) {
      return queue.*&Access::c;
    }
  };
  return Access::get(q);
}

template <typename Q>
typename Q::container_type& queue_container_mut(Q& q) {
  struct Access : Q {
    static typename Q::container_type& get(Q& queue) {
      return queue.*&Access::c;
    }
  };
  return Access::get(q);
}

}  // namespace

/// The one friend of StreamDetector / RealTimeDetector /
/// AdaptiveThresholdTuner: all member access happens in these statics.
struct DetectorStateAccess {
  static std::vector<std::byte> save_stream(const StreamDetector& d) {
    ByteWriter w;
    w.write(kDetectorStateVersion);

    w.write(static_cast<std::uint64_t>(d.accounts_.size()));
    for (const StreamDetector::AccountState& acc : d.accounts_) {
      write_ledger(w, acc.ledger);
      w.write(static_cast<std::uint64_t>(acc.first_friends.size()));
      for (osn::NodeId f : acc.first_friends) w.write(f);
      w.write(acc.internal_links);
      w.write(static_cast<std::uint8_t>(acc.flagged ? 1 : 0));
      w.write(static_cast<std::uint8_t>(acc.banned ? 1 : 0));
    }
    for (const auto& watchers : d.watchers_) {
      w.write(static_cast<std::uint64_t>(watchers.size()));
      for (osn::NodeId who : watchers) w.write(who);
    }

    std::vector<std::uint64_t> edges(d.edges_.begin(), d.edges_.end());
    std::sort(edges.begin(), edges.end());
    w.write(static_cast<std::uint64_t>(edges.size()));
    for (std::uint64_t key : edges) w.write(key);

    w.write(static_cast<std::uint64_t>(d.newly_flagged_.size()));
    for (const FlagRecord& rec : d.newly_flagged_) {
      w.write(rec.account);
      write_features(w, rec.features);
      w.write(rec.flagged_at);
    }
    w.write(static_cast<std::uint64_t>(d.flagged_total_));

    const auto& reorder = queue_container(d.reorder_);
    w.write(static_cast<std::uint64_t>(reorder.size()));
    for (const StreamDetector::Buffered& b : reorder) {
      w.write(b.event.time);  // the entry's sort time (see Buffered)
      w.write(b.seq);
      write_event(w, b.event);
    }

    std::vector<std::uint64_t> seqs(d.seen_seqs_.begin(), d.seen_seqs_.end());
    std::sort(seqs.begin(), seqs.end());
    w.write(static_cast<std::uint64_t>(seqs.size()));
    for (std::uint64_t s : seqs) w.write(s);

    w.write(static_cast<std::uint64_t>(d.released_.size()));
    for (const auto& [time, seq] : d.released_) {
      w.write(time);
      w.write(seq);
    }

    w.write(d.high_watermark_);
    w.write(static_cast<std::uint64_t>(d.dead_letters_.size()));
    for (const StreamDetector::DeadLetter& dl : d.dead_letters_) {
      write_event(w, dl.event);
      w.write(dl.seq);
      w.write(static_cast<std::uint32_t>(dl.reason));
    }
    w.write(d.next_auto_seq_);
    w.write(d.events_in_);
    w.write(d.applied_total_);
    w.write(d.deduped_total_);
    w.write(d.deadletter_total_);
    for (std::uint64_t c : d.deadletter_by_reason_) w.write(c);
    w.write(d.dead_letters_dropped_);
    w.write(d.banned_party_total_);
    return std::move(w).take();
  }

  static void load_stream(StreamDetector& d, std::span<const std::byte> blob) {
    ByteReader r(blob);
    check_version(r.read<std::uint32_t>(), "stream detector");

    const std::uint64_t n_accounts = read_count(r, "account");
    d.accounts_.assign(n_accounts, StreamDetector::AccountState{});
    for (auto& acc : d.accounts_) {
      acc.ledger = read_ledger(r);
      const std::uint64_t n_friends = read_count(r, "first-friend");
      acc.first_friends.resize(n_friends);
      for (auto& f : acc.first_friends) f = r.read<osn::NodeId>();
      acc.internal_links = r.read<std::uint32_t>();
      acc.flagged = r.read<std::uint8_t>() != 0;
      acc.banned = r.read<std::uint8_t>() != 0;
    }
    d.watchers_.assign(n_accounts, {});
    for (auto& watchers : d.watchers_) {
      const std::uint64_t n = read_count(r, "watcher");
      watchers.resize(n);
      for (auto& who : watchers) who = r.read<osn::NodeId>();
    }

    d.edges_.clear();
    const std::uint64_t n_edges = read_count(r, "edge");
    d.edges_.reserve(n_edges);
    for (std::uint64_t i = 0; i < n_edges; ++i) {
      d.edges_.insert(r.read<std::uint64_t>());
    }

    const std::uint64_t n_flags = read_count(r, "pending flag");
    d.newly_flagged_.resize(n_flags);
    for (auto& rec : d.newly_flagged_) {
      rec.account = r.read<osn::NodeId>();
      rec.features = read_features(r);
      rec.flagged_at = r.read<graph::Time>();
    }
    d.flagged_total_ = static_cast<std::size_t>(r.read<std::uint64_t>());

    auto& reorder = queue_container_mut(d.reorder_);
    const std::uint64_t n_buffered = read_count(r, "reorder-buffer");
    reorder.resize(n_buffered);
    for (auto& b : reorder) {
      const graph::Time time = r.read<graph::Time>();
      b.seq = r.read<std::uint64_t>();
      b.event = read_event(r);
      if (time != b.event.time) {
        throw SnapshotError(SnapshotErrorCode::kFormatViolation,
                            "reorder-buffer entry time disagrees with its "
                            "event time");
      }
    }

    d.seen_seqs_.clear();
    const std::uint64_t n_seqs = read_count(r, "seen-seq");
    d.seen_seqs_.reserve(n_seqs);
    for (std::uint64_t i = 0; i < n_seqs; ++i) {
      d.seen_seqs_.insert(r.read<std::uint64_t>());
    }
    d.released_.clear();
    const std::uint64_t n_released = read_count(r, "released-seq");
    for (std::uint64_t i = 0; i < n_released; ++i) {
      const graph::Time time = r.read<graph::Time>();
      const std::uint64_t seq = r.read<std::uint64_t>();
      d.released_.emplace_back(time, seq);
    }

    d.high_watermark_ = r.read<graph::Time>();
    d.dead_letters_.clear();
    const std::uint64_t n_dead = read_count(r, "dead-letter");
    for (std::uint64_t i = 0; i < n_dead; ++i) {
      StreamDetector::DeadLetter dl;
      dl.event = read_event(r);
      dl.seq = r.read<std::uint64_t>();
      const auto reason = r.read<std::uint32_t>();
      if (reason >= kStreamErrorCodeCount) {
        throw SnapshotError(SnapshotErrorCode::kFormatViolation,
                            "dead-letter reason " + std::to_string(reason) +
                                " out of range");
      }
      dl.reason = static_cast<StreamErrorCode>(reason);
      d.dead_letters_.push_back(dl);
    }
    d.next_auto_seq_ = r.read<std::uint64_t>();
    d.events_in_ = r.read<std::uint64_t>();
    d.applied_total_ = r.read<std::uint64_t>();
    d.deduped_total_ = r.read<std::uint64_t>();
    d.deadletter_total_ = r.read<std::uint64_t>();
    for (std::uint64_t& c : d.deadletter_by_reason_) {
      c = r.read<std::uint64_t>();
    }
    d.dead_letters_dropped_ = r.read<std::uint64_t>();
    d.banned_party_total_ = r.read<std::uint64_t>();
    if (!r.exhausted()) {
      throw SnapshotError(SnapshotErrorCode::kMalformedSection,
                          "trailing bytes after stream detector state");
    }
  }

  static std::vector<std::byte> save_realtime(const RealTimeDetector& d) {
    ByteWriter w;
    w.write(kDetectorStateVersion);
    write_rule(w, d.detector_.rule());

    std::vector<osn::NodeId> flagged(d.flagged_.begin(), d.flagged_.end());
    std::sort(flagged.begin(), flagged.end());
    w.write(static_cast<std::uint64_t>(flagged.size()));
    for (osn::NodeId id : flagged) w.write(id);

    w.write(static_cast<std::uint64_t>(d.carryover_.size()));
    for (osn::NodeId id : d.carryover_) w.write(id);
    w.write(static_cast<std::uint64_t>(d.confirmations_));

    const AdaptiveThresholdTuner& t = d.tuner_;
    write_rule(w, t.rule_);
    for (std::uint64_t word : t.rng_.state()) w.write(word);
    const auto write_reservoir =
        [&](const AdaptiveThresholdTuner::Reservoir& res) {
          for (const std::vector<double>* v :
               {&res.invite_rate, &res.out_accept, &res.clustering}) {
            w.write(static_cast<std::uint64_t>(v->size()));
            for (double x : *v) w.write(x);
          }
        };
    write_reservoir(t.normal_);
    write_reservoir(t.sybil_);
    w.write(static_cast<std::uint64_t>(t.normal_seen_));
    w.write(static_cast<std::uint64_t>(t.sybil_seen_));
    return std::move(w).take();
  }

  static void load_realtime(RealTimeDetector& d,
                            std::span<const std::byte> blob) {
    ByteReader r(blob);
    check_version(r.read<std::uint32_t>(), "realtime detector");
    d.detector_.set_rule(read_rule(r));

    d.flagged_.clear();
    const std::uint64_t n_flagged = read_count(r, "flagged");
    d.flagged_.reserve(n_flagged);
    for (std::uint64_t i = 0; i < n_flagged; ++i) {
      d.flagged_.insert(r.read<osn::NodeId>());
    }
    const std::uint64_t n_carry = read_count(r, "carryover");
    d.carryover_.resize(n_carry);
    d.carryover_set_.clear();
    for (auto& id : d.carryover_) {
      id = r.read<osn::NodeId>();
      d.carryover_set_.insert(id);
    }
    d.confirmations_ = static_cast<std::size_t>(r.read<std::uint64_t>());

    AdaptiveThresholdTuner& t = d.tuner_;
    t.rule_ = read_rule(r);
    std::array<std::uint64_t, 4> rng_state;
    for (std::uint64_t& word : rng_state) word = r.read<std::uint64_t>();
    t.rng_ = stats::Rng::from_state(rng_state);
    const auto read_reservoir = [&](AdaptiveThresholdTuner::Reservoir& res) {
      for (std::vector<double>* v :
           {&res.invite_rate, &res.out_accept, &res.clustering}) {
        const std::uint64_t n = read_count(r, "reservoir");
        v->resize(n);
        for (double& x : *v) x = r.read<double>();
      }
    };
    read_reservoir(t.normal_);
    read_reservoir(t.sybil_);
    t.normal_seen_ = static_cast<std::size_t>(r.read<std::uint64_t>());
    t.sybil_seen_ = static_cast<std::size_t>(r.read<std::uint64_t>());
    if (!r.exhausted()) {
      throw SnapshotError(SnapshotErrorCode::kMalformedSection,
                          "trailing bytes after realtime detector state");
    }
  }
};

std::vector<std::byte> serialize_stream_state(const StreamDetector& d) {
  return DetectorStateAccess::save_stream(d);
}

void restore_stream_state(StreamDetector& d, std::span<const std::byte> blob) {
  DetectorStateAccess::load_stream(d, blob);
}

std::vector<std::byte> serialize_realtime_state(const RealTimeDetector& d) {
  return DetectorStateAccess::save_realtime(d);
}

void restore_realtime_state(RealTimeDetector& d,
                            std::span<const std::byte> blob) {
  DetectorStateAccess::load_realtime(d, blob);
}

}  // namespace sybil::core
