#include "core/detector_options.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace sybil::core {

namespace {

[[noreturn]] void reject(const std::string& what) {
  throw std::invalid_argument("DetectorOptions: " + what);
}

}  // namespace

void DetectorOptions::validate() const {
  if (first_friends == 0) {
    reject("first_friends must be >= 1 (the clustering prefix length)");
  }
  if (retune_every == 0) {
    reject("retune_every must be >= 1");
  }
  if (!(rule.outgoing_accept_max >= 0.0 && rule.outgoing_accept_max <= 1.0)) {
    reject("rule.outgoing_accept_max must be a ratio in [0, 1]");
  }
  if (!(rule.invite_rate_min >= 0.0)) {
    reject("rule.invite_rate_min must be >= 0 invites per hour");
  }
  if (!(rule.clustering_max >= 0.0 && rule.clustering_max <= 1.0)) {
    reject("rule.clustering_max must be a coefficient in [0, 1]");
  }
  if (!(tuner.fp_quantile > 0.0 && tuner.fp_quantile < 1.0)) {
    reject("tuner.fp_quantile must lie strictly inside (0, 1)");
  }
  if (!(tuner.smoothing >= 0.0 && tuner.smoothing <= 1.0)) {
    reject("tuner.smoothing must lie in [0, 1]");
  }
  if (tuner.reservoir_capacity == 0) {
    reject("tuner.reservoir_capacity must be >= 1");
  }
  if (!(ingest.watermark_hours >= 0.0) ||
      !std::isfinite(ingest.watermark_hours)) {
    reject("ingest.watermark_hours must be a finite non-negative skew");
  }
  if (ingest.max_account_id == 0) {
    reject("ingest.max_account_id must be >= 1");
  }
  if (!(sweep_deadline_millis >= 0.0) ||
      !std::isfinite(sweep_deadline_millis)) {
    reject("sweep_deadline_millis must be finite and >= 0 (0 disables)");
  }
  if (overload.queue_capacity == 0) {
    reject("overload.queue_capacity must be >= 1");
  }
  if (overload.shed_watermark == 0 ||
      overload.shed_watermark > overload.sweep_only_watermark) {
    reject("overload.shed_watermark must be in [1, sweep_only_watermark]");
  }
  if (overload.sweep_only_watermark > overload.queue_capacity) {
    reject("overload.sweep_only_watermark must be <= queue_capacity");
  }
  if (overload.resume_watermark >= overload.shed_watermark) {
    reject(
        "overload.resume_watermark must be < shed_watermark (hysteresis)");
  }
  if (!(defense.residual_epsilon >= 0.0) ||
      !std::isfinite(defense.residual_epsilon)) {
    reject("defense.residual_epsilon must be finite and >= 0");
  }
  if (!(defense.full_recompute_fraction > 0.0 &&
        defense.full_recompute_fraction <= 1.0)) {
    reject("defense.full_recompute_fraction must lie in (0, 1]");
  }
  if (defense.enabled) {
    for (const graph::NodeId s : defense.seeds) {
      if (s > ingest.max_account_id) {
        reject("defense.seeds must lie within ingest.max_account_id");
      }
    }
  }
}

}  // namespace sybil::core
