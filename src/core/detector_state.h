// Exact-state codec for the detection pipeline, used by the service
// layer's incremental checkpoints (src/service/checkpoint.h).
//
// serialize_*/restore_* capture the COMPLETE private state of a
// StreamDetector / RealTimeDetector — ledgers, watcher index, reorder
// buffer (exact heap array, so resumed releases pop in the same order),
// dedup sets, accounting counters, adaptive-tuner reservoirs and RNG
// stream — such that a restored detector is byte-identical to one that
// never stopped: same verdicts, same feature snapshots, same counters,
// and identical bytes from the next serialize call (save-load-save
// stability). Hash-set contents are serialized sorted for that
// stability; their iteration order is never observable in behavior.
//
// The caller must restore into a detector constructed with the SAME
// DetectorOptions that produced the blob (the service persists options
// digest-free: options are code-level configuration, not state).
//
// Uses only the header-only ByteWriter/ByteReader and typed
// SnapshotError from src/io — no link dependency on sybil_io, keeping
// core -> io acyclic at the library level (the same arrangement as
// graph's use of io/error.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace sybil::core {

class StreamDetector;
class RealTimeDetector;

/// Blob format revision; bumped when the member list changes. Readers
/// reject newer revisions with SnapshotError(kUnsupportedVersion).
inline constexpr std::uint32_t kDetectorStateVersion = 2;

std::vector<std::byte> serialize_stream_state(const StreamDetector& d);
/// Throws io::SnapshotError on truncated/malformed/newer-version blobs;
/// `d` is left in an unspecified but destructible state on throw.
void restore_stream_state(StreamDetector& d, std::span<const std::byte> blob);

std::vector<std::byte> serialize_realtime_state(const RealTimeDetector& d);
void restore_realtime_state(RealTimeDetector& d,
                            std::span<const std::byte> blob);

}  // namespace sybil::core
