#include "core/stream_detector.h"

#include <algorithm>

#include "core/metrics/instrument.h"

namespace sybil::core {

namespace {

std::uint64_t edge_key(osn::NodeId a, osn::NodeId b) noexcept {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

StreamDetector::StreamDetector(const DetectorOptions& options)
    : options_([&] {
        options.validate();  // reject nonsense before any member is built
        return options;
      }()),
      detector_(options.rule) {}

void StreamDetector::ensure(osn::NodeId id) {
  if (id >= accounts_.size()) {
    accounts_.resize(id + 1);
    watchers_.resize(id + 1);
    SYBIL_METRIC_GAUGE_SET("stream.accounts_seen", accounts_.size());
  }
}

void StreamDetector::on_request_sent(osn::NodeId from, osn::NodeId to,
                                     graph::Time t) {
  SYBIL_METRIC_COUNT("stream.events.request_sent", 1);
  ensure(std::max(from, to));
  accounts_[from].ledger.record_sent(t);
  accounts_[to].ledger.record_received();
  maybe_flag(from, t);
}

void StreamDetector::on_request_rejected(osn::NodeId from, osn::NodeId to,
                                         graph::Time t) {
  SYBIL_METRIC_COUNT("stream.events.request_rejected", 1);
  ensure(std::max(from, to));
  // Rejection changes no counter (the ledger tracks sent vs accepted),
  // but it is the moment the outgoing ratio's shortfall becomes
  // observable — re-check the sender.
  maybe_flag(from, t);
}

void StreamDetector::on_request_accepted(osn::NodeId from, osn::NodeId to,
                                         graph::Time t) {
  SYBIL_METRIC_COUNT("stream.events.request_accepted", 1);
  ensure(std::max(from, to));
  accounts_[from].ledger.record_sent_accepted();
  accounts_[to].ledger.record_received_accepted();
  add_edge(from, to, t);
  maybe_flag(from, t);
  maybe_flag(to, t);
}

void StreamDetector::on_friendship(osn::NodeId u, osn::NodeId v,
                                   graph::Time t) {
  SYBIL_METRIC_COUNT("stream.events.friendship", 1);
  ensure(std::max(u, v));
  add_edge(u, v, t);
}

void StreamDetector::on_account_banned(osn::NodeId who) {
  SYBIL_METRIC_COUNT("stream.events.account_banned", 1);
  ensure(who);
  accounts_[who].banned = true;
}

void StreamDetector::attach_friend(osn::NodeId u, osn::NodeId v) {
  AccountState& acc = accounts_[u];
  if (acc.first_friends.size() >= options_.first_friends) return;
  // Count existing links between the newcomer and the already-watched
  // friends before inserting.
  for (osn::NodeId f : acc.first_friends) {
    if (edges_.contains(edge_key(f, v))) ++acc.internal_links;
  }
  acc.first_friends.push_back(v);
  watchers_[v].push_back(u);
}

void StreamDetector::add_edge(osn::NodeId u, osn::NodeId v, graph::Time) {
  if (u == v || !edges_.insert(edge_key(u, v)).second) return;

  // Accounts (other than the endpoints) watching BOTH endpoints gain an
  // internal link. Scan the smaller watcher list.
  const auto& wa = watchers_[u].size() <= watchers_[v].size() ? watchers_[u]
                                                              : watchers_[v];
  const osn::NodeId other =
      watchers_[u].size() <= watchers_[v].size() ? v : u;
  for (osn::NodeId w : wa) {
    if (w == u || w == v) continue;
    const auto& friends = accounts_[w].first_friends;
    if (std::find(friends.begin(), friends.end(), other) != friends.end()) {
      ++accounts_[w].internal_links;
    }
  }

  attach_friend(u, v);
  attach_friend(v, u);
}

SybilFeatures StreamDetector::features(osn::NodeId account) const {
  SybilFeatures f;
  if (account >= accounts_.size()) {
    f.outgoing_accept_ratio = 1.0;
    f.incoming_accept_ratio = 1.0;
    return f;
  }
  const AccountState& acc = accounts_[account];
  f.invite_rate_short = acc.ledger.short_term_rate();
  f.invite_rate_long = acc.ledger.long_term_rate(400.0);
  f.outgoing_accept_ratio =
      acc.ledger.sent() == 0
          ? 1.0
          : static_cast<double>(acc.ledger.sent_accepted()) /
                static_cast<double>(acc.ledger.sent());
  f.incoming_accept_ratio =
      acc.ledger.received() == 0
          ? 1.0
          : static_cast<double>(acc.ledger.received_accepted()) /
                static_cast<double>(acc.ledger.received());
  const auto n = static_cast<double>(acc.first_friends.size());
  f.clustering_coefficient =
      n < 2.0 ? 0.0
              : 2.0 * static_cast<double>(acc.internal_links) /
                    (n * (n - 1.0));
  return f;
}

void StreamDetector::maybe_flag(osn::NodeId id, graph::Time t) {
  AccountState& acc = accounts_[id];
  if (acc.flagged || acc.banned) return;
  const SybilFeatures f = features(id);
  if (detector_.is_sybil(f, acc.ledger.sent())) {
    acc.flagged = true;
    ++flagged_total_;
    newly_flagged_.push_back(FlagRecord{id, f, t});
    SYBIL_METRIC_COUNT("stream.flagged", 1);
  }
}

FlagBatch StreamDetector::take_flagged() {
  FlagBatch out;
  out.records.swap(newly_flagged_);
  return out;
}

void StreamDetector::replay(const osn::EventLog& log) {
  SYBIL_METRIC_SCOPED_TIMER(span, "stream.replay");
  for (const osn::Event& e : log.events()) {
    switch (e.type) {
      case osn::EventType::kRequestSent:
        on_request_sent(e.actor, e.subject, e.time);
        break;
      case osn::EventType::kRequestAccepted:
        // Log convention: actor = target (who accepted), subject = sender.
        on_request_accepted(e.subject, e.actor, e.time);
        break;
      case osn::EventType::kRequestRejected:
        on_request_rejected(e.subject, e.actor, e.time);
        break;
      case osn::EventType::kFriendshipSeeded:
        on_friendship(e.actor, e.subject, e.time);
        break;
      case osn::EventType::kAccountBanned:
        on_account_banned(e.actor);
        break;
      case osn::EventType::kAccountCreated:
      case osn::EventType::kRequestDropped:
        break;  // no feature effect, no counter — matches the live path,
                // which has no handler for these event types either
    }
  }
}

}  // namespace sybil::core
