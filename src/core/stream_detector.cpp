#include "core/stream_detector.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "core/metrics/instrument.h"

namespace sybil::core {

namespace {

std::uint64_t edge_key(osn::NodeId a, osn::NodeId b) noexcept {
  if (a > b) std::swap(a, b);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

/// Auto-assigned sequence numbers live in the top half of the u64
/// space so they can never collide with transport offsets/log indices.
constexpr std::uint64_t kAutoSeqBase = std::uint64_t{1} << 63;

}  // namespace

StreamDetector::StreamDetector(const DetectorOptions& options)
    : options_([&] {
        options.validate();  // reject nonsense before any member is built
        return options;
      }()),
      detector_(options.rule),
      high_watermark_(-std::numeric_limits<graph::Time>::infinity()),
      next_auto_seq_(kAutoSeqBase) {
  // Pre-register the dead-letter reason counters so every metrics
  // export carries the full reason breakdown (zeros included) — a
  // dashboard can tell "no dead letters" from "counter never existed",
  // and the shed/deadletter tiers stay distinguishable.
  SYBIL_METRIC_COUNT("stream.deadletter.total", 0);
  SYBIL_METRIC_COUNT("stream.deadletter.unknown_event_type", 0);
  SYBIL_METRIC_COUNT("stream.deadletter.invalid_account_id", 0);
  SYBIL_METRIC_COUNT("stream.deadletter.self_referential", 0);
  SYBIL_METRIC_COUNT("stream.deadletter.non_finite_time", 0);
  SYBIL_METRIC_COUNT("stream.deadletter.time_regression", 0);
  SYBIL_METRIC_COUNT("stream.deadletter.dropped", 0);
}

void StreamDetector::ensure(osn::NodeId id) {
  if (id >= accounts_.size()) {
    accounts_.resize(id + 1);
    watchers_.resize(id + 1);
    SYBIL_METRIC_GAUGE_SET("stream.accounts_seen", accounts_.size());
  }
}

void StreamDetector::on_request_sent(osn::NodeId from, osn::NodeId to,
                                     graph::Time t) {
  SYBIL_METRIC_COUNT("stream.events.request_sent", 1);
  ensure(std::max(from, to));
  const bool from_banned = accounts_[from].banned;
  const bool to_banned = accounts_[to].banned;
  if (from_banned || to_banned) {
    ++banned_party_total_;
    SYBIL_METRIC_COUNT("stream.events.banned_party", 1);
  }
  if (!from_banned) accounts_[from].ledger.record_sent(t);
  if (!to_banned) accounts_[to].ledger.record_received();
  maybe_flag(from, t);
}

void StreamDetector::on_request_rejected(osn::NodeId from, osn::NodeId to,
                                         graph::Time t) {
  SYBIL_METRIC_COUNT("stream.events.request_rejected", 1);
  ensure(std::max(from, to));
  if (accounts_[from].banned || accounts_[to].banned) {
    ++banned_party_total_;
    SYBIL_METRIC_COUNT("stream.events.banned_party", 1);
  }
  // Rejection changes no counter (the ledger tracks sent vs accepted),
  // but it is the moment the outgoing ratio's shortfall becomes
  // observable — re-check the sender.
  maybe_flag(from, t);
}

void StreamDetector::on_request_accepted(osn::NodeId from, osn::NodeId to,
                                         graph::Time t) {
  SYBIL_METRIC_COUNT("stream.events.request_accepted", 1);
  ensure(std::max(from, to));
  const bool from_banned = accounts_[from].banned;
  const bool to_banned = accounts_[to].banned;
  if (from_banned || to_banned) {
    ++banned_party_total_;
    SYBIL_METRIC_COUNT("stream.events.banned_party", 1);
  }
  if (!from_banned) accounts_[from].ledger.record_sent_accepted();
  if (!to_banned) accounts_[to].ledger.record_received_accepted();
  // No friendship materializes with a banned party: the platform
  // removes a banned account's edges, so installing one would leak
  // state the batch path can never see.
  if (!from_banned && !to_banned) add_edge(from, to, t);
  maybe_flag(from, t);
  maybe_flag(to, t);
}

void StreamDetector::on_friendship(osn::NodeId u, osn::NodeId v,
                                   graph::Time t) {
  SYBIL_METRIC_COUNT("stream.events.friendship", 1);
  ensure(std::max(u, v));
  if (accounts_[u].banned || accounts_[v].banned) {
    ++banned_party_total_;
    SYBIL_METRIC_COUNT("stream.events.banned_party", 1);
    return;
  }
  add_edge(u, v, t);
}

void StreamDetector::on_account_banned(osn::NodeId who) {
  SYBIL_METRIC_COUNT("stream.events.account_banned", 1);
  ensure(who);
  accounts_[who].banned = true;
}

void StreamDetector::attach_friend(osn::NodeId u, osn::NodeId v) {
  AccountState& acc = accounts_[u];
  if (acc.first_friends.size() >= options_.first_friends) return;
  // Count existing links between the newcomer and the already-watched
  // friends before inserting.
  for (osn::NodeId f : acc.first_friends) {
    if (edges_.contains(edge_key(f, v))) ++acc.internal_links;
  }
  acc.first_friends.push_back(v);
  watchers_[v].push_back(u);
}

void StreamDetector::add_edge(osn::NodeId u, osn::NodeId v, graph::Time) {
  if (u == v || !edges_.insert(edge_key(u, v))) return;

  // Accounts (other than the endpoints) watching BOTH endpoints gain an
  // internal link. Scan the smaller watcher list.
  const auto& wa = watchers_[u].size() <= watchers_[v].size() ? watchers_[u]
                                                              : watchers_[v];
  const osn::NodeId other =
      watchers_[u].size() <= watchers_[v].size() ? v : u;
  for (osn::NodeId w : wa) {
    if (w == u || w == v) continue;
    const auto& friends = accounts_[w].first_friends;
    if (std::find(friends.begin(), friends.end(), other) != friends.end()) {
      ++accounts_[w].internal_links;
    }
  }

  attach_friend(u, v);
  attach_friend(v, u);
}

SybilFeatures StreamDetector::features(osn::NodeId account) const {
  SybilFeatures f;
  if (account >= accounts_.size()) {
    f.outgoing_accept_ratio = 1.0;
    f.incoming_accept_ratio = 1.0;
    return f;
  }
  const AccountState& acc = accounts_[account];
  f.invite_rate_short = acc.ledger.short_term_rate();
  f.invite_rate_long = acc.ledger.long_term_rate(400.0);
  f.outgoing_accept_ratio =
      acc.ledger.sent() == 0
          ? 1.0
          : static_cast<double>(acc.ledger.sent_accepted()) /
                static_cast<double>(acc.ledger.sent());
  f.incoming_accept_ratio =
      acc.ledger.received() == 0
          ? 1.0
          : static_cast<double>(acc.ledger.received_accepted()) /
                static_cast<double>(acc.ledger.received());
  const auto n = static_cast<double>(acc.first_friends.size());
  f.clustering_coefficient =
      n < 2.0 ? 0.0
              : 2.0 * static_cast<double>(acc.internal_links) /
                    (n * (n - 1.0));
  return f;
}

void StreamDetector::maybe_flag(osn::NodeId id, graph::Time t) {
  AccountState& acc = accounts_[id];
  if (acc.flagged || acc.banned) return;
  const SybilFeatures f = features(id);
  if (detector_.is_sybil(f, acc.ledger.sent())) {
    acc.flagged = true;
    ++flagged_total_;
    newly_flagged_.push_back(FlagRecord{id, f, t});
    SYBIL_METRIC_COUNT("stream.flagged", 1);
  }
}

FlagBatch StreamDetector::take_flagged() {
  FlagBatch out;
  out.records.swap(newly_flagged_);
  return out;
}

std::size_t StreamDetector::sweep_flags(graph::Time now) {
  SYBIL_METRIC_SCOPED_TIMER(span, "stream.sweep_flags");
  const std::size_t before = newly_flagged_.size();
  for (osn::NodeId id = 0; id < accounts_.size(); ++id) {
    maybe_flag(id, now);
  }
  return newly_flagged_.size() - before;
}

void StreamDetector::dispatch(const osn::Event& e) {
  switch (e.type) {
    case osn::EventType::kRequestSent:
      on_request_sent(e.actor, e.subject, e.time);
      break;
    case osn::EventType::kRequestAccepted:
      // Log convention: actor = target (who accepted), subject = sender.
      on_request_accepted(e.subject, e.actor, e.time);
      break;
    case osn::EventType::kRequestRejected:
      on_request_rejected(e.subject, e.actor, e.time);
      break;
    case osn::EventType::kFriendshipSeeded:
      on_friendship(e.actor, e.subject, e.time);
      break;
    case osn::EventType::kAccountBanned:
      on_account_banned(e.actor);
      break;
    case osn::EventType::kAccountCreated:
    case osn::EventType::kRequestDropped:
      break;  // no feature effect, no counter — matches the live path,
              // which has no handler for these event types either
  }
}

void StreamDetector::replay(const osn::EventLog& log) {
  SYBIL_METRIC_SCOPED_TIMER(span, "stream.replay");
  for (const osn::Event& e : log.events()) dispatch(e);
}

bool StreamDetector::structurally_valid(const osn::Event& e,
                                        StreamErrorCode& reason) const {
  if (!osn::event_type_known(static_cast<std::uint8_t>(e.type))) {
    reason = StreamErrorCode::kUnknownEventType;
    return false;
  }
  if (!std::isfinite(e.time)) {
    reason = StreamErrorCode::kNonFiniteTime;
    return false;
  }
  if (e.actor > options_.ingest.max_account_id ||
      e.subject > options_.ingest.max_account_id) {
    reason = StreamErrorCode::kInvalidAccountId;
    return false;
  }
  if (osn::event_is_relational(e.type) && e.actor == e.subject) {
    reason = StreamErrorCode::kSelfReferential;
    return false;
  }
  return true;
}

void StreamDetector::quarantine(const osn::Event& e, std::uint64_t seq,
                                StreamErrorCode reason) {
  ++deadletter_total_;
  ++deadletter_by_reason_[static_cast<std::size_t>(reason)];
  SYBIL_METRIC_COUNT("stream.deadletter.total", 1);
  switch (reason) {
    case StreamErrorCode::kUnknownEventType:
      SYBIL_METRIC_COUNT("stream.deadletter.unknown_event_type", 1);
      break;
    case StreamErrorCode::kInvalidAccountId:
      SYBIL_METRIC_COUNT("stream.deadletter.invalid_account_id", 1);
      break;
    case StreamErrorCode::kSelfReferential:
      SYBIL_METRIC_COUNT("stream.deadletter.self_referential", 1);
      break;
    case StreamErrorCode::kNonFiniteTime:
      SYBIL_METRIC_COUNT("stream.deadletter.non_finite_time", 1);
      break;
    case StreamErrorCode::kTimeRegression:
      SYBIL_METRIC_COUNT("stream.deadletter.time_regression", 1);
      break;
  }
  if (options_.ingest.dead_letter_capacity == 0) {
    ++dead_letters_dropped_;
    SYBIL_METRIC_COUNT("stream.deadletter.dropped", 1);
  } else {
    if (dead_letters_.size() >= options_.ingest.dead_letter_capacity) {
      dead_letters_.pop_front();
      ++dead_letters_dropped_;
      SYBIL_METRIC_COUNT("stream.deadletter.dropped", 1);
    }
    dead_letters_.push_back(DeadLetter{e, seq, reason});
  }
  if (options_.ingest.policy == IngestPolicy::kStrict) {
    throw StreamError(reason,
                      "event seq " + std::to_string(seq) + " (type " +
                          std::to_string(static_cast<unsigned>(e.type)) +
                          ", t=" + std::to_string(e.time) + ") rejected");
  }
}

void StreamDetector::release_ready() {
  const graph::Time low = high_watermark_ - options_.ingest.watermark_hours;
  while (!reorder_.empty() && reorder_.top().event.time <= low) {
    const std::uint64_t seq = reorder_.top().seq;
    const osn::Event e = reorder_.top().event;
    reorder_.pop();
    released_.emplace_back(e.time, seq);
    ++applied_total_;
    SYBIL_METRIC_COUNT("stream.ingest.applied", 1);
    dispatch(e);
  }
  // Prune duplicate-detection state that the watermark has passed: a
  // redelivery of a pruned seq necessarily carries an event time below
  // the low watermark and is quarantined as kTimeRegression before the
  // dedup check can matter. Releases come out of the heap in ascending
  // (time, seq) order, so released_ is sorted and the prunable prefix
  // sits at its front.
  while (!released_.empty() && released_.front().first < low) {
    seen_seqs_.erase(released_.front().second);
    released_.pop_front();
  }
}

void StreamDetector::ingest(const osn::Event& e, std::uint64_t seq) {
  ++events_in_;
  SYBIL_METRIC_COUNT("stream.ingest.events_in", 1);
  if (seq == kAutoSeq) seq = next_auto_seq_++;
  StreamErrorCode reason;
  if (!structurally_valid(e, reason)) {
    quarantine(e, seq, reason);
    return;
  }
  // One probe does dedup-check and accept: a false return is exactly
  // the old contains() hit. The insert is undone on the (rare) time-
  // regression path below, so a quarantined seq is never remembered.
  if (!seen_seqs_.insert(seq)) {
    ++deduped_total_;
    SYBIL_METRIC_COUNT("stream.ingest.deduped", 1);
    return;
  }
  // Before any event is accepted the high watermark is -inf, so the
  // low watermark is -inf too and no finite time can regress past it.
  if (e.time < high_watermark_ - options_.ingest.watermark_hours) {
    seen_seqs_.erase(seq);
    quarantine(e, seq, StreamErrorCode::kTimeRegression);
    return;
  }
  reorder_.push(Buffered{seq, e});
  if (e.time > high_watermark_) high_watermark_ = e.time;
  release_ready();
  SYBIL_METRIC_GAUGE_SET("stream.ingest.buffered", reorder_.size());
}

void StreamDetector::finish() {
  while (!reorder_.empty()) {
    const std::uint64_t seq = reorder_.top().seq;
    const osn::Event e = reorder_.top().event;
    reorder_.pop();
    released_.emplace_back(e.time, seq);
    ++applied_total_;
    SYBIL_METRIC_COUNT("stream.ingest.applied", 1);
    dispatch(e);
  }
  SYBIL_METRIC_GAUGE_SET("stream.ingest.buffered", 0);
}

}  // namespace sybil::core
