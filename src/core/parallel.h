// Deterministic work-scheduling layer: a reusable thread pool plus
// parallel_for / parallel_reduce over fixed chunk partitions.
//
// Determinism contract (relied on by every caller in graph/, detectors/
// and bench/): the chunk partition of [0, n) depends only on n and the
// requested grain — never on the worker count — and reductions combine
// per-chunk partials in ascending chunk order. Stochastic chunk bodies
// draw from an Rng stream derived from (master seed, chunk index) via
// chunk_rng(). Together these guarantee bit-identical results whether
// the pool runs 1 thread or 64, so `SYBIL_THREADS=k` is purely a
// performance knob.
//
// Worker count resolution: explicit set_thread_count() (tests) beats the
// SYBIL_THREADS environment variable, which beats hardware_concurrency.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "stats/rng.h"

namespace sybil::core {

/// A contiguous slice [begin, end) of the iteration space plus its
/// position in the fixed chunk partition (the RNG stream id).
struct ChunkRange {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t index = 0;
};

/// Number of workers the pool will use (>= 1). Honors set_thread_count,
/// then SYBIL_THREADS, then std::thread::hardware_concurrency.
std::size_t thread_count();

/// Overrides the worker count at runtime (0 = back to automatic).
/// Re-sizes the shared pool; not safe to call concurrently with
/// parallel_for / parallel_reduce.
void set_thread_count(std::size_t threads);

/// Splits [0, n) into a thread-count-independent partition. With
/// grain == 0 the space is divided into at most kDefaultChunks
/// equal chunks; otherwise chunks hold `grain` items each (last one
/// short). Exposed so tests can assert the partition is stable.
std::vector<ChunkRange> chunk_partition(std::size_t n, std::size_t grain = 0);

inline constexpr std::size_t kDefaultChunks = 64;

/// Runs `body` over every chunk of the partition of [0, n). Chunks are
/// claimed dynamically by workers, so bodies must only write state owned
/// by their chunk (e.g. disjoint output slots). Exceptions thrown by a
/// body are rethrown on the calling thread (first one wins).
void parallel_for(std::size_t n,
                  const std::function<void(const ChunkRange&)>& body,
                  std::size_t grain = 0);

/// Deterministic map-reduce: `map` produces one partial per chunk and
/// `combine(acc, partial)` folds the partials into `init` in ascending
/// chunk order, so floating-point rounding is identical for any worker
/// count.
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::size_t n, T init, Map&& map, Combine&& combine,
                  std::size_t grain = 0) {
  const auto chunks = chunk_partition(n, grain);
  std::vector<T> partials(chunks.size());
  parallel_for(
      n,
      [&](const ChunkRange& c) { partials[c.index] = map(c); },
      grain);
  for (T& partial : partials) init = combine(std::move(init), partial);
  return init;
}

/// Independent RNG stream for one chunk (or one work item), derived from
/// the master seed. Streams are decorrelated via splitmix64, and the
/// derivation is a pure function of (master_seed, stream) — the anchor
/// of the determinism contract for stochastic parallel loops.
stats::Rng chunk_rng(std::uint64_t master_seed, std::uint64_t stream) noexcept;

}  // namespace sybil::core
