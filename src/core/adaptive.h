// Adaptive feedback tuning of the threshold rule.
//
// The paper deploys "an adaptive feedback scheme to dynamically tune
// threshold parameters on the fly" but withholds its details for
// Renren's security. This is our re-design of such a scheme, documented
// as a substitution in DESIGN.md: administrators confirm flagged
// accounts (and spot-check unflagged ones); the tuner keeps bounded
// reservoir samples of confirmed-normal and confirmed-Sybil feature
// values and re-derives each threshold from a false-positive-budget
// quantile of the *normal* population, smoothing changes exponentially
// so a burst of feedback cannot whipsaw the production rule.
#pragma once

#include <cstddef>
#include <vector>

#include "core/features.h"
#include "core/threshold_detector.h"
#include "stats/rng.h"

namespace sybil::core {

struct AdaptiveConfig {
  /// Quantile of the confirmed-normal distribution each threshold is
  /// anchored to (0.995 → at most ~0.5% of normals cross any single
  /// threshold; the conjunction pushes the joint FPR far lower).
  double fp_quantile = 0.995;
  /// Exponential smoothing factor applied when moving a threshold
  /// toward its re-estimated value (0 = frozen, 1 = jump immediately).
  double smoothing = 0.3;
  /// Reservoir capacity per class.
  std::size_t reservoir_capacity = 5000;
  /// Minimum confirmed-normal observations before retuning activates.
  std::size_t min_observations = 50;
  ThresholdRule initial{};
  std::uint64_t seed = 99;
};

class AdaptiveThresholdTuner {
 public:
  explicit AdaptiveThresholdTuner(AdaptiveConfig config = {});

  /// Feedback from manual verification of an account.
  void observe(const SybilFeatures& f, bool confirmed_sybil);

  /// Re-derives the rule from the reservoirs (no-op until
  /// min_observations normals have been seen). Returns the active rule.
  const ThresholdRule& retune();

  const ThresholdRule& rule() const noexcept { return rule_; }
  std::size_t normal_observations() const noexcept { return normal_seen_; }
  std::size_t sybil_observations() const noexcept { return sybil_seen_; }

 private:
  /// Checkpoint codec (core/detector_state.h): reservoirs, RNG stream
  /// and smoothed rule must survive recovery for retunes to continue
  /// exactly where they left off.
  friend struct DetectorStateAccess;

  struct Reservoir {
    std::vector<double> invite_rate;
    std::vector<double> out_accept;
    std::vector<double> clustering;
  };

  void reservoir_add(Reservoir& r, const SybilFeatures& f,
                     std::size_t seen_before);
  static double quantile_of(std::vector<double> values, double q);

  AdaptiveConfig config_;
  ThresholdRule rule_;
  stats::Rng rng_;
  Reservoir normal_, sybil_;
  std::size_t normal_seen_ = 0;
  std::size_t sybil_seen_ = 0;
};

}  // namespace sybil::core
