#include "core/features.h"

#include "core/parallel.h"

namespace sybil::core {

FeatureExtractor::FeatureExtractor(const osn::Network& net,
                                   double long_window_hours,
                                   std::size_t first_friends)
    : net_(net),
      view_(graph::CsrGraph::from(net.graph())),
      long_window_(long_window_hours),
      first_friends_(first_friends) {}

void FeatureExtractor::fill_rates(osn::NodeId account,
                                  SybilFeatures& f) const {
  const osn::RequestLedger& led = net_.ledger(account);
  f.invite_rate_short = led.short_term_rate();
  f.invite_rate_long = led.long_term_rate(long_window_);
  // Accounts with no outgoing (or incoming) request history are treated
  // as fully accepted: the detector must not flag inactive users.
  f.outgoing_accept_ratio =
      led.sent() == 0 ? 1.0
                      : static_cast<double>(led.sent_accepted()) /
                            static_cast<double>(led.sent());
  f.incoming_accept_ratio =
      led.received() == 0 ? 1.0
                          : static_cast<double>(led.received_accepted()) /
                                static_cast<double>(led.received());
}

SybilFeatures FeatureExtractor::extract(osn::NodeId account) const {
  SybilFeatures f;
  fill_rates(account, f);
  f.clustering_coefficient =
      graph::first_k_clustering(view_, account, first_friends_);
  return f;
}

std::vector<SybilFeatures> FeatureExtractor::extract(
    const std::vector<osn::NodeId>& accounts) const {
  std::vector<SybilFeatures> out(accounts.size());
  // Clustering — the expensive column — goes through the batched first-k
  // kernel (per-chunk scratch, one shared sorted view); the ledger-based
  // rates are cheap and filled alongside.
  std::vector<double> cc(accounts.size(), 0.0);
  graph::first_k_clustering_batch(view_, accounts, first_friends_, cc);
  parallel_for(accounts.size(), [&](const ChunkRange& c) {
    for (std::size_t i = c.begin; i < c.end; ++i) {
      fill_rates(accounts[i], out[i]);
      out[i].clustering_coefficient = cc[i];
    }
  });
  return out;
}

}  // namespace sybil::core
