// Typed error taxonomy for the streaming ingestion path.
//
// Mirrors io/error.h: where SnapshotError classifies why a *file* was
// rejected, StreamErrorCode classifies why an *event* was quarantined
// by StreamDetector::ingest — so operators can alert on the reason mix
// (a burst of kTimeRegression means a feed replaying stale history; a
// burst of kUnknownEventType means a producer running a newer schema)
// instead of string-matching log lines.
//
// Under the lenient policy (the default) no exception is thrown: each
// rejected event is quarantined into the bounded dead-letter queue with
// its reason code. Under the strict policy the first rejected event
// throws StreamError after being accounted for, so the accounting
// invariant (events_in == applied + deduped + dead-lettered + buffered)
// holds even at the throw site.
//
// Header-only like io/error.h, and for the same reason: the faults
// layer and the bench runner share the taxonomy without adding link
// dependencies.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

namespace sybil::core {

enum class StreamErrorCode {
  kUnknownEventType,  // type byte outside the EventType enum
  kInvalidAccountId,  // actor/subject above the configured account bound
  kSelfReferential,   // relational event with actor == subject
  kNonFiniteTime,     // NaN or infinite timestamp
  kTimeRegression,    // event time below the reorder low watermark
};

/// Number of StreamErrorCode values — sizes the per-reason dead-letter
/// counter array and lets exporters iterate the taxonomy.
inline constexpr std::size_t kStreamErrorCodeCount = 5;

/// Returns a stable identifier ("time-regression", ...) for logging,
/// metrics suffixes and test assertions.
constexpr const char* to_string(StreamErrorCode code) noexcept {
  switch (code) {
    case StreamErrorCode::kUnknownEventType: return "unknown-event-type";
    case StreamErrorCode::kInvalidAccountId: return "invalid-account-id";
    case StreamErrorCode::kSelfReferential: return "self-referential";
    case StreamErrorCode::kNonFiniteTime: return "non-finite-time";
    case StreamErrorCode::kTimeRegression: return "time-regression";
  }
  return "unknown";
}

/// Thrown by StreamDetector::ingest under IngestPolicy::kStrict.
/// Derives from std::runtime_error so generic catch sites keep working;
/// new code should catch StreamError and inspect code().
class StreamError : public std::runtime_error {
 public:
  StreamError(StreamErrorCode code, const std::string& detail)
      : std::runtime_error(std::string("stream [") + to_string(code) +
                           "]: " + detail),
        code_(code) {}

  StreamErrorCode code() const noexcept { return code_; }

 private:
  StreamErrorCode code_;
};

}  // namespace sybil::core
