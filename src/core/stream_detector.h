// Streaming Sybil detector: the production form of the paper's
// real-time system.
//
// Where FeatureExtractor computes features from a graph snapshot, this
// detector consumes the platform's request event stream *incrementally*
// — O(1) amortized work per event, no snapshots — and keeps every
// account's four features current:
//
//   * invitation rates: the same hour-bucket ledger the batch path uses;
//   * accept ratios: plain counters;
//   * clustering coefficient of the first K friends: each account
//     "watches" its first K friends; a reverse index (node → watching
//     accounts) lets a new friendship (a, b) update the internal-link
//     counter of exactly the accounts that watch both endpoints.
//
// Feeding the detector a network's event log reproduces the batch
// features exactly (tested in stream_detector_test.cpp), so a deployment
// can run either path and trust they agree.
//
// Observability: every event handler bumps a "stream.events.*" counter,
// and flags bump "stream.flagged" — replay() drives the handlers, so a
// replayed log and the equivalent live stream report identical totals
// (pinned by a regression test). Collection never affects verdicts.
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/detector.h"
#include "core/detector_options.h"
#include "core/features.h"
#include "core/threshold_detector.h"
#include "osn/events.h"
#include "osn/ledger.h"

namespace sybil::core {

class StreamDetector {
 public:
  /// Deprecated alias kept for one release: the streaming path now
  /// shares DetectorOptions with the batch path.
  using Config [[deprecated("use sybil::core::DetectorOptions")]] =
      DetectorOptions;

  StreamDetector() : StreamDetector(DetectorOptions{}) {}
  /// Throws std::invalid_argument if `options` fails validate().
  explicit StreamDetector(const DetectorOptions& options);

  /// Event-stream entry points. Events must arrive in nondecreasing
  /// time order per account (the order a platform log provides).
  void on_request_sent(osn::NodeId from, osn::NodeId to, graph::Time t);
  void on_request_rejected(osn::NodeId from, osn::NodeId to, graph::Time t);
  /// `from`'s request was accepted by `to` at time t (creates an edge).
  void on_request_accepted(osn::NodeId from, osn::NodeId to, graph::Time t);
  /// Pre-existing friendship without request mechanics (seeded edge).
  void on_friendship(osn::NodeId u, osn::NodeId v, graph::Time t);
  void on_account_banned(osn::NodeId who);

  /// Replays a whole event log (convenience for batch catch-up).
  /// Dispatches to the on_* handlers, so metrics counters advance
  /// exactly as they would for the equivalent live stream.
  void replay(const osn::EventLog& log);

  /// Current streaming features of an account (zero-state for accounts
  /// never seen).
  SybilFeatures features(osn::NodeId account) const;

  /// Accounts newly crossing the threshold rule since the last call,
  /// with their features captured at flag time; each account is
  /// reported at most once, banned accounts never.
  FlagBatch take_flagged();

  const ThresholdRule& rule() const noexcept { return detector_.rule(); }
  std::size_t flagged_total() const noexcept { return flagged_total_; }
  std::size_t accounts_seen() const noexcept { return accounts_.size(); }

 private:
  struct AccountState {
    osn::RequestLedger ledger;
    std::vector<osn::NodeId> first_friends;  // chronological, size <= K
    std::uint32_t internal_links = 0;  // edges among first_friends
    bool flagged = false;
    bool banned = false;
  };

  void ensure(osn::NodeId id);
  void add_edge(osn::NodeId u, osn::NodeId v, graph::Time t);
  /// Registers v as a (possibly) watched friend of u and updates u's
  /// internal link count against the already-watched friends.
  void attach_friend(osn::NodeId u, osn::NodeId v);
  void maybe_flag(osn::NodeId id, graph::Time t);

  DetectorOptions options_;
  ThresholdDetector detector_;
  std::vector<AccountState> accounts_;
  /// watchers_[v] = accounts whose first-K friend set contains v.
  std::vector<std::vector<osn::NodeId>> watchers_;
  /// Existing edges, for the internal-link update (canonical u<v keys).
  std::unordered_set<std::uint64_t> edges_;
  std::vector<FlagRecord> newly_flagged_;
  std::size_t flagged_total_ = 0;
};

}  // namespace sybil::core
