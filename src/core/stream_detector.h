// Streaming Sybil detector: the production form of the paper's
// real-time system.
//
// Where FeatureExtractor computes features from a graph snapshot, this
// detector consumes the platform's request event stream *incrementally*
// — O(1) amortized work per event, no snapshots — and keeps every
// account's four features current:
//
//   * invitation rates: the same hour-bucket ledger the batch path uses;
//   * accept ratios: plain counters;
//   * clustering coefficient of the first K friends: each account
//     "watches" its first K friends; a reverse index (node → watching
//     accounts) lets a new friendship (a, b) update the internal-link
//     counter of exactly the accounts that watch both endpoints.
//
// Two ingestion surfaces, one feature engine:
//
//   * the on_* handlers and replay() are the TRUSTED path: events are
//     applied immediately and must arrive in nondecreasing time order
//     per account (the order a platform log provides);
//   * ingest()/finish() is the HARDENED path for hostile or degraded
//     feeds (late, duplicated, reordered, malformed records): events
//     pass structural validation, sequence-number deduplication and a
//     watermark-based reorder buffer before reaching the same handlers,
//     and rejected events are quarantined into a bounded dead-letter
//     queue with typed reason codes (core/stream_error.h). Policy,
//     watermark and bounds live in DetectorOptions::ingest; semantics
//     are specified in docs/ROBUSTNESS.md.
//
// The hardened path maintains an exact accounting invariant at all
// times:  events_in == applied + deduped + dead-lettered + buffered.
//
// Feeding the detector a network's event log reproduces the batch
// features exactly (tested in stream_detector_test.cpp), so a deployment
// can run either path and trust they agree.
//
// Observability: every event handler bumps a "stream.events.*" counter,
// and flags bump "stream.flagged"; the hardened path adds
// "stream.ingest.*" and "stream.deadletter.*" counters. Collection
// never affects verdicts.
#pragma once

#include <cstdint>
#include <deque>
#include <queue>
#include <vector>

#include "core/detector.h"
#include "core/detector_options.h"
#include "core/features.h"
#include "core/flat_set.h"
#include "core/stream_error.h"
#include "core/threshold_detector.h"
#include "osn/events.h"
#include "osn/ledger.h"

namespace sybil::core {

class StreamDetector {
 public:
  StreamDetector() : StreamDetector(DetectorOptions{}) {}
  /// Throws std::invalid_argument if `options` fails validate().
  explicit StreamDetector(const DetectorOptions& options);

  /// Trusted event-stream entry points. Events must arrive in
  /// nondecreasing time order per account (the order a platform log
  /// provides); use ingest() for feeds that cannot promise that.
  /// Events referencing an already-banned account never mutate the
  /// banned account's state (the late-ban/request race): the banned
  /// side is frozen, the live side still updates, and the event is
  /// counted under banned_party_total / "stream.events.banned_party".
  void on_request_sent(osn::NodeId from, osn::NodeId to, graph::Time t);
  void on_request_rejected(osn::NodeId from, osn::NodeId to, graph::Time t);
  /// `from`'s request was accepted by `to` at time t (creates an edge).
  void on_request_accepted(osn::NodeId from, osn::NodeId to, graph::Time t);
  /// Pre-existing friendship without request mechanics (seeded edge).
  void on_friendship(osn::NodeId u, osn::NodeId v, graph::Time t);
  void on_account_banned(osn::NodeId who);

  /// Replays a whole event log (convenience for batch catch-up).
  /// Dispatches to the on_* handlers, so metrics counters advance
  /// exactly as they would for the equivalent live stream.
  void replay(const osn::EventLog& log);

  // ---- Hardened ingestion (hostile / degraded feeds) ----

  /// Sentinel: let ingest() assign a unique sequence number (disables
  /// duplicate detection for that event — auto numbers never repeat).
  static constexpr std::uint64_t kAutoSeq = ~std::uint64_t{0};

  /// One quarantined event: what arrived, its transport sequence
  /// number, and why it was rejected.
  struct DeadLetter {
    osn::Event event;
    std::uint64_t seq;
    StreamErrorCode reason;
  };

  /// Validates, deduplicates and reorder-buffers one event, then
  /// applies every event whose time has passed the watermark. `seq` is
  /// the transport-level sequence number (a log index, a Kafka offset);
  /// redelivery of an already-seen seq within the reorder horizon is
  /// counted as a duplicate and ignored. Under IngestPolicy::kStrict a
  /// rejected event throws StreamError *after* being accounted for.
  void ingest(const osn::Event& e, std::uint64_t seq = kAutoSeq);

  /// Drains the reorder buffer (end of stream / shutdown). Events still
  /// in flight are applied in (time, seq) order. ingest() may be called
  /// again afterwards; the watermark is retained.
  void finish();

  /// Exact ingestion accounting. Invariant at every point:
  ///   events_in() == applied_total() + deduped_total()
  ///                  + deadletter_total() + buffered().
  std::uint64_t events_in() const noexcept { return events_in_; }
  std::uint64_t applied_total() const noexcept { return applied_total_; }
  std::uint64_t deduped_total() const noexcept { return deduped_total_; }
  std::uint64_t deadletter_total() const noexcept {
    return deadletter_total_;
  }
  std::uint64_t buffered() const noexcept { return reorder_.size(); }

  /// Exact dead-letter count for one rejection reason; the sum over all
  /// reasons equals deadletter_total(). Unlike the dead-letter queue
  /// (bounded, evicting) these counters never lose history — they are
  /// what the service's accounting JSON and dashboards break down by.
  std::uint64_t deadletter_by_reason(StreamErrorCode reason) const noexcept {
    return deadletter_by_reason_[static_cast<std::size_t>(reason)];
  }

  /// Most recent quarantined events (at most ingest.dead_letter_capacity;
  /// older entries evicted and counted in dead_letters_dropped()).
  const std::deque<DeadLetter>& dead_letters() const noexcept {
    return dead_letters_;
  }
  std::uint64_t dead_letters_dropped() const noexcept {
    return dead_letters_dropped_;
  }

  /// Events (trusted or hardened path) that referenced an account
  /// already banned at apply time — tolerated, banned side frozen.
  std::uint64_t banned_party_total() const noexcept {
    return banned_party_total_;
  }

  /// Current streaming features of an account (zero-state for accounts
  /// never seen).
  SybilFeatures features(osn::NodeId account) const;

  /// Accounts newly crossing the threshold rule since the last call,
  /// with their features captured at flag time; each account is
  /// reported at most once, banned accounts never.
  FlagBatch take_flagged();

  /// Re-evaluates every known account against the rule and stamps new
  /// flags with `now` — the flag-sweep-only degradation tier's periodic
  /// pass, which must keep emitting verdicts from existing evidence
  /// even while feature ingestion is shed. Returns how many accounts
  /// were newly flagged (retrieve them via take_flagged()).
  std::size_t sweep_flags(graph::Time now);

  const ThresholdRule& rule() const noexcept { return detector_.rule(); }
  std::size_t flagged_total() const noexcept { return flagged_total_; }
  std::size_t accounts_seen() const noexcept { return accounts_.size(); }

 private:
  /// Checkpoint codec (core/detector_state.h): serializes the complete
  /// private state so a recovered detector is byte-identical to one
  /// that never stopped. Kept out of the public API on purpose.
  friend struct DetectorStateAccess;

  struct AccountState {
    osn::RequestLedger ledger;
    std::vector<osn::NodeId> first_friends;  // chronological, size <= K
    std::uint32_t internal_links = 0;  // edges among first_friends
    bool flagged = false;
    bool banned = false;
  };

  /// Reorder-buffer entry, released in (time, seq) order so replays of
  /// the same event multiset apply identically whatever the arrival
  /// interleaving (the chaos-equivalence invariant). The sort time is
  /// the event's own time — not duplicated here, the entry is copied
  /// around by every heap sift.
  struct Buffered {
    std::uint64_t seq;
    osn::Event event;
    bool operator>(const Buffered& other) const noexcept {
      if (event.time != other.event.time) return event.time > other.event.time;
      return seq > other.seq;
    }
  };

  void ensure(osn::NodeId id);
  void add_edge(osn::NodeId u, osn::NodeId v, graph::Time t);
  /// Registers v as a (possibly) watched friend of u and updates u's
  /// internal link count against the already-watched friends.
  void attach_friend(osn::NodeId u, osn::NodeId v);
  void maybe_flag(osn::NodeId id, graph::Time t);
  /// Dispatches one log-convention event to the on_* handlers (shared
  /// by replay() and the reorder-buffer release path).
  void dispatch(const osn::Event& e);
  /// Structural validation of an untrusted record. Returns true when
  /// the event may be applied; otherwise sets `reason`.
  bool structurally_valid(const osn::Event& e, StreamErrorCode& reason) const;
  /// Accounts for a rejected event (dead-letter queue + counters);
  /// throws StreamError afterwards under the strict policy.
  void quarantine(const osn::Event& e, std::uint64_t seq,
                  StreamErrorCode reason);
  /// Applies every buffered event at or below the low watermark.
  void release_ready();

  DetectorOptions options_;
  ThresholdDetector detector_;
  std::vector<AccountState> accounts_;
  /// watchers_[v] = accounts whose first-K friend set contains v.
  std::vector<std::vector<osn::NodeId>> watchers_;
  /// Existing edges, for the internal-link update (canonical u<v keys).
  /// Flat open-addressing set: the ingest hot path probes it per edge
  /// event, and node-based sets cost an allocation per insert.
  FlatSet64 edges_;
  std::vector<FlagRecord> newly_flagged_;
  std::size_t flagged_total_ = 0;

  // ---- hardened-path state ----
  std::priority_queue<Buffered, std::vector<Buffered>, std::greater<>>
      reorder_;
  /// Seqs accepted within the reorder horizon (duplicate detection);
  /// pruned as the low watermark advances past their event time.
  SeqBitSet seen_seqs_;
  /// Released-but-not-yet-pruned (time, seq) pairs, appended as events
  /// leave the reorder buffer — which is already ascending (time, seq)
  /// order, so pruning pops from the front instead of paying a second
  /// per-event heap. Events still buffered need no entry: release (time
  /// <= low) always precedes pruning (time < low) under the same low
  /// watermark, so only released seqs are ever prunable.
  std::deque<std::pair<graph::Time, std::uint64_t>> released_;
  graph::Time high_watermark_;  // max event time accepted so far
  std::deque<DeadLetter> dead_letters_;
  std::uint64_t next_auto_seq_;
  std::uint64_t events_in_ = 0;
  std::uint64_t applied_total_ = 0;
  std::uint64_t deduped_total_ = 0;
  std::uint64_t deadletter_total_ = 0;
  std::uint64_t deadletter_by_reason_[kStreamErrorCodeCount] = {};
  std::uint64_t dead_letters_dropped_ = 0;
  std::uint64_t banned_party_total_ = 0;
};

}  // namespace sybil::core
