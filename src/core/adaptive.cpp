#include "core/adaptive.h"

#include <algorithm>
#include <cmath>

namespace sybil::core {

AdaptiveThresholdTuner::AdaptiveThresholdTuner(AdaptiveConfig config)
    : config_(config), rule_(config.initial), rng_(config.seed) {}

void AdaptiveThresholdTuner::reservoir_add(Reservoir& r,
                                           const SybilFeatures& f,
                                           std::size_t seen_before) {
  const auto push = [&](std::vector<double>& vec, double value) {
    if (vec.size() < config_.reservoir_capacity) {
      vec.push_back(value);
    } else {
      // Vitter's algorithm R.
      const std::size_t slot = rng_.uniform_index(seen_before + 1);
      if (slot < vec.size()) vec[slot] = value;
    }
  };
  push(r.invite_rate, f.invite_rate_short);
  push(r.out_accept, f.outgoing_accept_ratio);
  push(r.clustering, f.clustering_coefficient);
}

void AdaptiveThresholdTuner::observe(const SybilFeatures& f,
                                     bool confirmed_sybil) {
  if (confirmed_sybil) {
    reservoir_add(sybil_, f, sybil_seen_++);
  } else {
    reservoir_add(normal_, f, normal_seen_++);
  }
}

double AdaptiveThresholdTuner::quantile_of(std::vector<double> values,
                                           double q) {
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(values.size())));
  return values[std::min(std::max<std::size_t>(rank, 1), values.size()) - 1];
}

const ThresholdRule& AdaptiveThresholdTuner::retune() {
  if (normal_seen_ < config_.min_observations) return rule_;
  const double q = config_.fp_quantile;
  const double a = std::clamp(config_.smoothing, 0.0, 1.0);
  const auto blend = [a](double current, double target) {
    return current + a * (target - current);
  };
  // With enough confirmed-Sybil feedback the threshold is placed at the
  // geometric midpoint of the two populations' facing quantiles;
  // otherwise it anchors on the normal quantile alone (FP-conservative).
  const bool have_sybils =
      sybil_seen_ >= std::max<std::size_t>(1, config_.min_observations / 2);
  const auto midpoint = [](double normal_side, double sybil_side) {
    if (!(normal_side > 0.0) || !(sybil_side > 0.0)) {
      return (normal_side + sybil_side) / 2.0;
    }
    return std::sqrt(normal_side * sybil_side);
  };

  // Invitation rate: above nearly all normals, below most Sybils.
  const double normal_rate_hi = quantile_of(normal_.invite_rate, q);
  double rate_target = 1.2 * normal_rate_hi;
  if (have_sybils) {
    rate_target = std::max(
        normal_rate_hi,
        midpoint(normal_rate_hi, quantile_of(sybil_.invite_rate, 0.1)));
  }
  rule_.invite_rate_min = blend(rule_.invite_rate_min, rate_target);

  // Outgoing accept: below nearly all normals, above most Sybils.
  const double normal_acc_lo = quantile_of(normal_.out_accept, 1.0 - q);
  double accept_target = normal_acc_lo;
  if (have_sybils) {
    accept_target = std::min(
        normal_acc_lo,
        midpoint(normal_acc_lo, quantile_of(sybil_.out_accept, 0.9)));
  }
  rule_.outgoing_accept_max =
      blend(rule_.outgoing_accept_max, std::max(0.05, accept_target));

  // Clustering: below nearly all normals, above most Sybils; never so
  // low that typical Sybil values (≈0) stop qualifying.
  const double normal_cc_lo =
      std::max(quantile_of(normal_.clustering, 1.0 - q), 1e-4);
  double cc_target = normal_cc_lo;
  if (have_sybils) {
    cc_target = std::min(
        normal_cc_lo,
        midpoint(normal_cc_lo,
                 std::max(quantile_of(sybil_.clustering, 0.9), 1e-5)));
  }
  rule_.clustering_max = blend(rule_.clustering_max, std::max(1e-4, cc_target));
  return rule_;
}

}  // namespace sybil::core
