// Sybil topology analysis (Section 3): everything behind Figs 5-7, 9
// and Table 2.
//
// Terminology from the paper: a "Sybil edge" connects two Sybils; an
// "attack edge" connects a Sybil to a normal user; a component's
// "audience" is the set of distinct normal users adjacent to it.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/components.h"
#include "graph/csr.h"
#include "osn/network.h"

namespace sybil::core {

class TopologyAnalyzer {
 public:
  /// Analyzes a friendship graph with the given Sybil node set. Only
  /// the graph structure is needed, so the analysis also runs on graphs
  /// loaded from disk (see examples/analyze_graph.cpp).
  TopologyAnalyzer(const graph::TimestampedGraph& g,
                   std::vector<osn::NodeId> sybil_ids);

  TopologyAnalyzer(const osn::Network& net, std::vector<osn::NodeId> ids)
      : TopologyAnalyzer(net.graph(), std::move(ids)) {}

  std::size_t sybil_count() const noexcept { return sybils_.size(); }

  /// Fig 5 series: total degree of every Sybil.
  std::vector<double> sybil_total_degrees() const;
  /// Fig 5 series: Sybil-edge-only degree of every Sybil.
  std::vector<double> sybil_edge_degrees() const;

  /// Fraction of Sybils with at least one Sybil edge (paper: ≈20%).
  double fraction_with_sybil_edge() const;

  std::uint64_t total_sybil_edges() const noexcept { return sybil_edges_; }
  std::uint64_t total_attack_edges() const noexcept { return attack_edges_; }

  /// Per-component statistics of the Sybil-induced subgraph. Singleton
  /// "components" (Sybils with no Sybil edges) are excluded, matching
  /// the paper's component analysis.
  struct ComponentStats {
    std::uint32_t component;     // id into components()
    std::uint32_t sybils;
    std::uint64_t sybil_edges;   // internal edges
    std::uint64_t attack_edges;  // edges to normal users
    std::uint64_t audience;      // distinct normal neighbors
  };

  /// Component stats sorted by size descending (Table 2 rows are the
  /// first five). Audience computation is O(sum of member degrees).
  const std::vector<ComponentStats>& component_stats() const {
    return stats_;
  }

  /// Fig 6 series: sizes of non-singleton Sybil components.
  std::vector<double> component_sizes() const;

  /// Member ids of the size-rank-th largest component (0 = largest).
  std::vector<osn::NodeId> component_members(std::size_t size_rank) const;

  /// Fig 9 series for one component: per-member Sybil-edge degree and
  /// total degree.
  struct ComponentDegrees {
    std::vector<double> sybil_degree;
    std::vector<double> total_degree;
  };
  ComponentDegrees component_degrees(std::size_t size_rank) const;

  const graph::CsrGraph& snapshot() const noexcept { return csr_; }
  const std::vector<bool>& sybil_mask() const noexcept { return mask_; }

 private:
  graph::CsrGraph csr_;
  std::vector<osn::NodeId> sybils_;
  std::vector<bool> mask_;
  graph::Components comps_;
  std::vector<ComponentStats> stats_;       // sorted by size desc
  std::uint64_t sybil_edges_ = 0;
  std::uint64_t attack_edges_ = 0;
};

}  // namespace sybil::core
