#include "graph/metrics.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace sybil::graph {

double degree_assortativity(const CsrGraph& g) {
  // Newman's formulation over directed edge endpoints.
  double sum_xy = 0.0, sum_x = 0.0, sum_x2 = 0.0;
  std::uint64_t m2 = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const double du = g.degree(u);
    for (NodeId v : g.neighbors(u)) {
      const double dv = g.degree(v);
      sum_xy += du * dv;
      sum_x += du;
      sum_x2 += du * du;
      ++m2;
    }
  }
  if (m2 == 0) throw std::invalid_argument("assortativity: no edges");
  const double n = static_cast<double>(m2);
  const double mean = sum_x / n;
  const double var = sum_x2 / n - mean * mean;
  if (!(var > 0.0)) {
    throw std::domain_error("assortativity: constant degrees");
  }
  return (sum_xy / n - mean * mean) / var;
}

std::vector<std::uint32_t> core_numbers(const CsrGraph& g) {
  const NodeId n = g.node_count();
  std::vector<std::uint32_t> degree(n), core(n, 0);
  std::uint32_t max_deg = 0;
  for (NodeId u = 0; u < n; ++u) {
    degree[u] = g.degree(u);
    max_deg = std::max(max_deg, degree[u]);
  }
  // Bucket sort by degree (Batagelj-Zaversnik).
  std::vector<std::uint32_t> bin(max_deg + 2, 0);
  for (NodeId u = 0; u < n; ++u) ++bin[degree[u]];
  std::uint32_t start = 0;
  for (std::uint32_t d = 0; d <= max_deg; ++d) {
    const std::uint32_t count = bin[d];
    bin[d] = start;
    start += count;
  }
  std::vector<NodeId> order(n);
  std::vector<std::uint32_t> pos(n);
  {
    std::vector<std::uint32_t> cursor(bin.begin(), bin.end() - 1);
    for (NodeId u = 0; u < n; ++u) {
      pos[u] = cursor[degree[u]];
      order[pos[u]] = u;
      ++cursor[degree[u]];
    }
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    const NodeId u = order[i];
    core[u] = degree[u];
    for (NodeId v : g.neighbors(u)) {
      if (degree[v] > degree[u]) {
        // Move v one bucket down: swap with the first node of its bucket.
        const std::uint32_t dv = degree[v];
        const std::uint32_t pv = pos[v];
        const std::uint32_t pw = bin[dv];
        const NodeId w = order[pw];
        if (v != w) {
          std::swap(order[pv], order[pw]);
          pos[v] = pw;
          pos[w] = pv;
        }
        ++bin[dv];
        --degree[v];
      }
    }
  }
  return core;
}

std::vector<std::uint32_t> bfs_distances(const CsrGraph& g, NodeId source) {
  std::vector<std::uint32_t> dist(g.node_count(), kUnreachable);
  std::queue<NodeId> q;
  dist[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const NodeId u = q.front();
    q.pop();
    for (NodeId v : g.neighbors(u)) {
      if (dist[v] == kUnreachable) {
        dist[v] = dist[u] + 1;
        q.push(v);
      }
    }
  }
  return dist;
}

PathStats sampled_path_stats(const CsrGraph& g, std::size_t samples,
                             stats::Rng& rng) {
  if (g.node_count() == 0) throw std::invalid_argument("paths: empty graph");
  PathStats stats;
  double total = 0.0;
  for (std::size_t i = 0; i < samples; ++i) {
    const auto source =
        static_cast<NodeId>(rng.uniform_index(g.node_count()));
    const auto dist = bfs_distances(g, source);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (v != source && dist[v] != kUnreachable) {
        total += dist[v];
        ++stats.reachable_pairs;
        stats.max_distance = std::max(stats.max_distance, dist[v]);
      }
    }
  }
  if (stats.reachable_pairs > 0) {
    stats.mean_distance = total / static_cast<double>(stats.reachable_pairs);
  }
  return stats;
}

}  // namespace sybil::graph
