// Random walks and random routes.
//
// SybilGuard/SybilLimit are built on "random routes": walks following a
// per-node random permutation that maps each incoming edge to a distinct
// outgoing edge, so routes through a node along the same incoming edge
// always leave the same way (and routes are back-traceable). We provide
// plain random walks (used by SybilInfer and trust-ranking) and route
// tables (used by SybilGuard/SybilLimit).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/csr.h"
#include "stats/rng.h"

namespace sybil::graph {

/// A simple unbiased random walk of `length` steps from `start`.
/// Returns the visited node sequence including the start (length+1 nodes,
/// shorter only if the walk reaches an isolated node).
std::vector<NodeId> random_walk(const CsrGraph& g, NodeId start,
                                std::size_t length, stats::Rng& rng);

/// Terminal node of a walk (convenience over random_walk).
NodeId random_walk_endpoint(const CsrGraph& g, NodeId start,
                            std::size_t length, stats::Rng& rng);

/// Stationary-distribution check helper: performs `walks` walks of
/// `length` from `start` and returns visit counts per node.
std::vector<std::uint64_t> walk_visit_counts(const CsrGraph& g, NodeId start,
                                             std::size_t length,
                                             std::size_t walks,
                                             stats::Rng& rng);

/// Parallel walk fan-out: for every node in `starts`, runs
/// `walks_per_start` walks of `length` steps and histograms the walk
/// *endpoints* over all nodes. Work is sharded over the fixed chunk
/// partition of `starts` with one core::chunk_rng stream per chunk, so
/// the histogram is bit-identical for any SYBIL_THREADS setting (the
/// determinism contract of core/parallel.h).
std::vector<std::uint64_t> endpoint_histogram(const CsrGraph& g,
                                              std::span<const NodeId> starts,
                                              std::size_t walks_per_start,
                                              std::size_t length,
                                              std::uint64_t master_seed);

/// Per-node routing permutations for random routes.
///
/// For node u with degree d, perm[u] is a permutation of [0, d): a route
/// entering u via its i-th incident edge leaves via the perm[u][i]-th
/// incident edge. Walks entering along the same edge therefore converge,
/// which is the property SybilGuard's intersection test relies on.
class RouteTable {
 public:
  RouteTable(const CsrGraph& g, stats::Rng& rng);

  /// Follows the route from `start` leaving along its `first_edge`-th
  /// incident edge for `length` steps. Returns visited nodes (start
  /// included). Precondition: first_edge < degree(start).
  std::vector<NodeId> route(const CsrGraph& g, NodeId start,
                            std::size_t first_edge, std::size_t length) const;

  /// Edge (node, incident-index) pairs along a route — used by
  /// SybilLimit's tail-intersection test which intersects *edges*.
  struct Hop {
    NodeId node;
    std::uint32_t edge_index;  // index into neighbors(node)
  };
  std::vector<Hop> route_hops(const CsrGraph& g, NodeId start,
                              std::size_t first_edge,
                              std::size_t length) const;

 private:
  // perm_ is stored flattened with the same offsets as the CSR rows.
  std::vector<std::uint32_t> perm_;
  std::vector<std::uint64_t> offsets_;
  /// Index of edge (v -> u) within v's row, precomputed for O(1) reverse
  /// lookups while routing.
  std::vector<std::uint32_t> reverse_index_;
};

}  // namespace sybil::graph
