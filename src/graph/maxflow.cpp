#include "graph/maxflow.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace sybil::graph {

FlowNetwork::FlowNetwork(std::size_t node_count)
    : head_(node_count, kNil) {}

std::size_t FlowNetwork::add_arc(std::size_t u, std::size_t v,
                                 std::int64_t capacity) {
  if (u >= head_.size() || v >= head_.size()) {
    throw std::out_of_range("flow: node out of range");
  }
  if (capacity < 0) throw std::invalid_argument("flow: negative capacity");
  const auto id = arcs_.size();
  arcs_.push_back({static_cast<std::uint32_t>(v), head_[u], capacity});
  head_[u] = static_cast<std::uint32_t>(id);
  arcs_.push_back({static_cast<std::uint32_t>(u), head_[v], 0});
  head_[v] = static_cast<std::uint32_t>(id + 1);
  return id;
}

void FlowNetwork::add_undirected(std::size_t u, std::size_t v,
                                 std::int64_t capacity) {
  // Two antiparallel arcs; each gets its own residual twin.
  add_arc(u, v, capacity);
  add_arc(v, u, capacity);
}

bool FlowNetwork::bfs_levels(std::size_t s, std::size_t t) {
  level_.assign(head_.size(), -1);
  std::queue<std::size_t> q;
  level_[s] = 0;
  q.push(s);
  while (!q.empty()) {
    const std::size_t u = q.front();
    q.pop();
    for (std::uint32_t a = head_[u]; a != kNil; a = arcs_[a].next) {
      if (arcs_[a].cap > 0 && level_[arcs_[a].to] < 0) {
        level_[arcs_[a].to] = level_[u] + 1;
        q.push(arcs_[a].to);
      }
    }
  }
  return level_[t] >= 0;
}

std::int64_t FlowNetwork::dfs_push(std::size_t u, std::size_t t,
                                   std::int64_t limit) {
  if (u == t) return limit;
  for (std::uint32_t& a = iter_[u]; a != kNil; a = arcs_[a].next) {
    Arc& arc = arcs_[a];
    if (arc.cap > 0 && level_[arc.to] == level_[u] + 1) {
      const std::int64_t pushed =
          dfs_push(arc.to, t, std::min(limit, arc.cap));
      if (pushed > 0) {
        arc.cap -= pushed;
        arcs_[a ^ 1].cap += pushed;
        return pushed;
      }
    }
  }
  return 0;
}

std::int64_t FlowNetwork::max_flow(std::size_t s, std::size_t t) {
  if (s == t) throw std::invalid_argument("flow: s == t");
  std::int64_t total = 0;
  while (bfs_levels(s, t)) {
    iter_ = head_;
    while (const std::int64_t pushed =
               dfs_push(s, t, std::numeric_limits<std::int64_t>::max())) {
      total += pushed;
    }
  }
  return total;
}

std::vector<bool> FlowNetwork::min_cut_side(std::size_t s) const {
  std::vector<bool> side(head_.size(), false);
  std::queue<std::size_t> q;
  side[s] = true;
  q.push(s);
  while (!q.empty()) {
    const std::size_t u = q.front();
    q.pop();
    for (std::uint32_t a = head_[u]; a != kNil; a = arcs_[a].next) {
      if (arcs_[a].cap > 0 && !side[arcs_[a].to]) {
        side[arcs_[a].to] = true;
        q.push(arcs_[a].to);
      }
    }
  }
  return side;
}

}  // namespace sybil::graph
