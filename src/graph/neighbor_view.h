// One adjacency handle, two orderings.
//
// The paper's first-k clustering feature needs an account's neighbors in
// *chronological* (edge-creation) order to pick the first-50 prefix, and
// needs *sorted* adjacency to intersect neighbor lists cheaply. Before
// this view existed, call sites carried two graph handles for one
// logical graph — a TimestampedGraph for chronology plus a CsrGraph for
// lookups — and every mutual-link query paid a hash set plus a full
// adjacency scan.
//
// NeighborView collapses the pair: it takes one CSR snapshot whose rows
// are chronological (CsrGraph::from preserves insertion order, and the
// io layer's mmap'd zero-copy snapshots round-trip that order) and
// builds a sorted twin of the targets array over the *same* offsets,
// once, in parallel. Algorithms then ask for whichever ordering they
// need:
//
//   chronological(u)  row as ingested (first-k prefixes, replay)
//   first_k(u, k)     the paper's first-k prefix, no copy
//   sorted(u)         ascending ids (galloping intersection, has_edge)
//
// Construction is O(E log deg) and the sorted twin is one contiguous
// allocation, so building a view per sweep amortizes across every
// candidate the sweep evaluates (see first_k_clustering_batch).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/csr.h"
#include "graph/graph.h"

namespace sybil::graph {

class NeighborView {
 public:
  NeighborView() = default;

  /// Takes ownership of a CSR snapshot whose rows are in chronological
  /// order (what CsrGraph::from produces) and builds the sorted twin.
  /// Moving the graph in is cheap; zero-copy mmap views stay zero-copy
  /// for the chronological side.
  explicit NeighborView(CsrGraph csr);

  /// Convenience: snapshot + view in one step.
  static NeighborView from(const TimestampedGraph& g) {
    return NeighborView(CsrGraph::from(g));
  }

  /// Adopts a chronological snapshot plus an externally built sorted
  /// twin (each row ascending, aligned to the same offsets), skipping
  /// the construction sort. DynamicGraph maintains sorted rows
  /// incrementally and compacts them through here so a rebuild never
  /// re-sorts adjacency it already keeps ordered.
  static NeighborView with_sorted(CsrGraph csr,
                                  std::vector<NodeId> sorted_targets);

  NodeId node_count() const noexcept { return csr_.node_count(); }
  std::uint64_t edge_count() const noexcept { return csr_.edge_count(); }
  NodeId degree(NodeId u) const { return csr_.degree(u); }

  /// Neighbors of u in edge-creation order (the CSR row as ingested).
  std::span<const NodeId> chronological(NodeId u) const {
    return csr_.neighbors(u);
  }

  /// The paper's prefix: u's first min(k, degree) friends by time.
  std::span<const NodeId> first_k(NodeId u, std::size_t k) const {
    const auto row = csr_.neighbors(u);
    return row.subspan(0, row.size() < k ? row.size() : k);
  }

  /// Neighbors of u in ascending id order.
  std::span<const NodeId> sorted(NodeId u) const {
    const auto off = csr_.offsets();
    return {sorted_targets_.data() + off[u],
            sorted_targets_.data() + off[u + 1]};
  }

  /// O(log degree) membership test over the sorted row.
  bool has_edge(NodeId u, NodeId v) const;

  /// The underlying chronological snapshot (for callers that still
  /// need a raw CsrGraph, e.g. the snapshot writer).
  const CsrGraph& csr() const noexcept { return csr_; }

 private:
  CsrGraph csr_;
  /// Sorted twin of csr_.targets(), aligned to the same offsets array.
  std::vector<NodeId> sorted_targets_;
};

}  // namespace sybil::graph
