#include "graph/clustering.h"

#include <algorithm>
#include <unordered_set>

#include "core/parallel.h"

namespace sybil::graph {

namespace {

/// Counts edges among the given candidate set using a hash set of the
/// candidates and scanning each candidate's adjacency once. Kept as the
/// reference kernel for the deprecated two-handle API and for full-
/// neighborhood clustering (whose rows have no sorted twin).
std::uint64_t edges_within(const CsrGraph& g, std::span<const NodeId> nodes) {
  std::unordered_set<NodeId> member(nodes.begin(), nodes.end());
  std::uint64_t twice_edges = 0;
  for (NodeId u : nodes) {
    for (NodeId v : g.neighbors(u)) {
      if (v != u && member.contains(v)) ++twice_edges;
    }
  }
  return twice_edges / 2;
}

/// Branchless lower bound: the compiler turns the half-select into a
/// conditional move, so the search pipeline never mispredicts on the
/// (random) comparison outcomes.
const NodeId* branchless_lower_bound(const NodeId* first, std::size_t n,
                                     NodeId x) noexcept {
  while (n > 1) {
    const std::size_t half = n / 2;
    first = first[half - 1] < x ? first + half : first;
    n -= half;
  }
  return (n == 1 && *first < x) ? first + 1 : first;
}

/// |a ∩ b| for two ascending id lists. When one side is much longer,
/// gallops through it (exponential probe + branchless binary search,
/// advancing the base past each hit so total work is
/// O(small · log(large/small))); otherwise a two-pointer merge.
std::uint64_t intersect_count(std::span<const NodeId> a,
                              std::span<const NodeId> b) noexcept {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty() || b.empty()) return 0;
  std::uint64_t hits = 0;
  if (b.size() / (a.size() + 1) >= 8) {
    const NodeId* base = b.data();
    const NodeId* const end = b.data() + b.size();
    for (NodeId x : a) {
      // Exponential probe from the current base, then binary search
      // inside the bracketing window.
      std::size_t bound = 1;
      const auto remaining = static_cast<std::size_t>(end - base);
      if (remaining == 0) break;
      while (bound < remaining && base[bound - 1] < x) bound <<= 1;
      const std::size_t lo = bound >> 1;
      const std::size_t hi = bound < remaining ? bound : remaining;
      const NodeId* pos = branchless_lower_bound(base + lo, hi - lo, x);
      hits += (pos != end && *pos == x) ? 1 : 0;
      base = pos;
    }
    return hits;
  }
  const NodeId* pa = a.data();
  const NodeId* pb = b.data();
  const NodeId* const ea = pa + a.size();
  const NodeId* const eb = pb + b.size();
  while (pa != ea && pb != eb) {
    const NodeId va = *pa;
    const NodeId vb = *pb;
    hits += va == vb ? 1 : 0;
    pa += va <= vb ? 1 : 0;
    pb += vb <= va ? 1 : 0;
  }
  return hits;
}

/// The first-k kernel: sorted-subset self-intersection against each
/// member's sorted adjacency. Every subset edge (f, g) is counted once
/// from each endpoint, hence the /2 — an exact integer, so the final
/// double is bit-identical to the hash-set reference kernel.
double first_k_kernel(const NeighborView& view, NodeId u, std::size_t k,
                      ClusteringScratch& scratch) {
  if (u >= view.node_count()) return 0.0;
  const auto prefix = view.first_k(u, k);
  const std::size_t d = prefix.size();
  if (d < 2) return 0.0;
  scratch.subset.assign(prefix.begin(), prefix.end());
  std::sort(scratch.subset.begin(), scratch.subset.end());
  std::uint64_t twice_edges = 0;
  for (NodeId f : scratch.subset) {
    twice_edges += intersect_count(view.sorted(f), scratch.subset);
  }
  const std::uint64_t links = twice_edges / 2;
  return 2.0 * static_cast<double>(links) /
         (static_cast<double>(d) * static_cast<double>(d - 1));
}

}  // namespace

double local_clustering(const CsrGraph& g, NodeId u) {
  const auto nbrs = g.neighbors(u);
  const std::size_t d = nbrs.size();
  if (d < 2) return 0.0;
  const std::uint64_t links = edges_within(g, nbrs);
  return 2.0 * static_cast<double>(links) /
         (static_cast<double>(d) * static_cast<double>(d - 1));
}

double first_k_clustering(const NeighborView& view, NodeId u, std::size_t k) {
  ClusteringScratch scratch;
  return first_k_kernel(view, u, k, scratch);
}

double first_k_clustering(const NeighborView& view, NodeId u, std::size_t k,
                          ClusteringScratch& scratch) {
  return first_k_kernel(view, u, k, scratch);
}

void first_k_clustering_batch(const NeighborView& view,
                              std::span<const NodeId> subjects, std::size_t k,
                              std::span<double> out) {
  core::parallel_for(subjects.size(), [&](const core::ChunkRange& c) {
    // One scratch arena per chunk: the subset buffer allocates once and
    // is recycled across every candidate the chunk evaluates.
    ClusteringScratch scratch;
    scratch.subset.reserve(k);
    for (std::size_t i = c.begin; i < c.end; ++i) {
      out[i] = first_k_kernel(view, subjects[i], k, scratch);
    }
  });
}

std::vector<double> first_k_clustering_batch(const NeighborView& view,
                                             std::span<const NodeId> subjects,
                                             std::size_t k) {
  std::vector<double> out(subjects.size(), 0.0);
  first_k_clustering_batch(view, subjects, k, out);
  return out;
}

double clustering_of_subset(const CsrGraph& g,
                            std::span<const NodeId> subset) {
  const std::size_t d = subset.size();
  if (d < 2) return 0.0;
  const std::uint64_t links = edges_within(g, subset);
  return 2.0 * static_cast<double>(links) /
         (static_cast<double>(d) * static_cast<double>(d - 1));
}

double first_k_clustering(const TimestampedGraph& tg, const CsrGraph& g,
                          NodeId u, std::size_t k) {
  const auto nbrs = tg.neighbors(u);  // chronological order
  std::vector<NodeId> first;
  first.reserve(std::min(k, nbrs.size()));
  for (const Neighbor& n : nbrs) {
    if (first.size() >= k) break;
    first.push_back(n.node);
  }
  return clustering_of_subset(g, first);
}

std::vector<double> local_clustering_all(const CsrGraph& g) {
  std::vector<double> cc(g.node_count(), 0.0);
  core::parallel_for(g.node_count(), [&](const core::ChunkRange& c) {
    for (std::size_t u = c.begin; u < c.end; ++u) {
      cc[u] = local_clustering(g, static_cast<NodeId>(u));
    }
  });
  return cc;
}

double average_clustering(const CsrGraph& g) {
  struct Partial {
    double total = 0.0;
    std::uint64_t counted = 0;
  };
  const Partial sum = core::parallel_reduce(
      g.node_count(), Partial{},
      [&](const core::ChunkRange& c) {
        Partial p;
        for (std::size_t u = c.begin; u < c.end; ++u) {
          if (g.degree(static_cast<NodeId>(u)) < 2) continue;
          p.total += local_clustering(g, static_cast<NodeId>(u));
          ++p.counted;
        }
        return p;
      },
      [](Partial acc, const Partial& p) {
        acc.total += p.total;
        acc.counted += p.counted;
        return acc;
      });
  return sum.counted == 0
             ? 0.0
             : sum.total / static_cast<double>(sum.counted);
}

std::uint64_t triangle_count(const CsrGraph& g) {
  // Forward algorithm: orient edges from lower-degree to higher-degree
  // (ties by id), intersect sorted forward-neighbor lists.
  const NodeId n = g.node_count();
  const auto precedes = [&g](NodeId a, NodeId b) {
    return g.degree(a) != g.degree(b) ? g.degree(a) < g.degree(b) : a < b;
  };
  std::vector<std::vector<NodeId>> fwd(n);
  core::parallel_for(n, [&](const core::ChunkRange& c) {
    for (std::size_t u = c.begin; u < c.end; ++u) {
      for (NodeId v : g.neighbors(static_cast<NodeId>(u))) {
        if (precedes(static_cast<NodeId>(u), v)) fwd[u].push_back(v);
      }
      std::sort(fwd[u].begin(), fwd[u].end());
    }
  });
  return core::parallel_reduce(
      n, std::uint64_t{0},
      [&](const core::ChunkRange& c) {
        std::uint64_t triangles = 0;
        for (std::size_t u = c.begin; u < c.end; ++u) {
          for (NodeId v : fwd[u]) {
            triangles += intersect_count(fwd[u], fwd[v]);
          }
        }
        return triangles;
      },
      [](std::uint64_t acc, std::uint64_t t) { return acc + t; });
}

double transitivity(const CsrGraph& g) {
  std::uint64_t wedges = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const std::uint64_t d = g.degree(u);
    wedges += d * (d - 1) / 2;
  }
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(triangle_count(g)) /
         static_cast<double>(wedges);
}

}  // namespace sybil::graph
