#include "graph/clustering.h"

#include <algorithm>
#include <unordered_set>

#include "core/parallel.h"

namespace sybil::graph {

namespace {

/// Counts edges among the given candidate set using a hash set of the
/// candidates and scanning each candidate's adjacency once.
std::uint64_t edges_within(const CsrGraph& g, std::span<const NodeId> nodes) {
  std::unordered_set<NodeId> member(nodes.begin(), nodes.end());
  std::uint64_t twice_edges = 0;
  for (NodeId u : nodes) {
    for (NodeId v : g.neighbors(u)) {
      if (v != u && member.contains(v)) ++twice_edges;
    }
  }
  return twice_edges / 2;
}

}  // namespace

double local_clustering(const CsrGraph& g, NodeId u) {
  const auto nbrs = g.neighbors(u);
  const std::size_t d = nbrs.size();
  if (d < 2) return 0.0;
  const std::uint64_t links = edges_within(g, nbrs);
  return 2.0 * static_cast<double>(links) /
         (static_cast<double>(d) * static_cast<double>(d - 1));
}

double clustering_of_subset(const CsrGraph& g,
                            std::span<const NodeId> subset) {
  const std::size_t d = subset.size();
  if (d < 2) return 0.0;
  const std::uint64_t links = edges_within(g, subset);
  return 2.0 * static_cast<double>(links) /
         (static_cast<double>(d) * static_cast<double>(d - 1));
}

double first_k_clustering(const TimestampedGraph& tg, const CsrGraph& g,
                          NodeId u, std::size_t k) {
  const auto nbrs = tg.neighbors(u);  // chronological order
  std::vector<NodeId> first;
  first.reserve(std::min(k, nbrs.size()));
  for (const Neighbor& n : nbrs) {
    if (first.size() >= k) break;
    first.push_back(n.node);
  }
  return clustering_of_subset(g, first);
}

std::vector<double> local_clustering_all(const CsrGraph& g) {
  std::vector<double> cc(g.node_count(), 0.0);
  core::parallel_for(g.node_count(), [&](const core::ChunkRange& c) {
    for (std::size_t u = c.begin; u < c.end; ++u) {
      cc[u] = local_clustering(g, static_cast<NodeId>(u));
    }
  });
  return cc;
}

double average_clustering(const CsrGraph& g) {
  struct Partial {
    double total = 0.0;
    std::uint64_t counted = 0;
  };
  const Partial sum = core::parallel_reduce(
      g.node_count(), Partial{},
      [&](const core::ChunkRange& c) {
        Partial p;
        for (std::size_t u = c.begin; u < c.end; ++u) {
          if (g.degree(static_cast<NodeId>(u)) < 2) continue;
          p.total += local_clustering(g, static_cast<NodeId>(u));
          ++p.counted;
        }
        return p;
      },
      [](Partial acc, const Partial& p) {
        acc.total += p.total;
        acc.counted += p.counted;
        return acc;
      });
  return sum.counted == 0
             ? 0.0
             : sum.total / static_cast<double>(sum.counted);
}

std::uint64_t triangle_count(const CsrGraph& g) {
  // Forward algorithm: orient edges from lower-degree to higher-degree
  // (ties by id), intersect sorted forward-neighbor lists.
  const NodeId n = g.node_count();
  const auto precedes = [&g](NodeId a, NodeId b) {
    return g.degree(a) != g.degree(b) ? g.degree(a) < g.degree(b) : a < b;
  };
  std::vector<std::vector<NodeId>> fwd(n);
  core::parallel_for(n, [&](const core::ChunkRange& c) {
    for (std::size_t u = c.begin; u < c.end; ++u) {
      for (NodeId v : g.neighbors(static_cast<NodeId>(u))) {
        if (precedes(static_cast<NodeId>(u), v)) fwd[u].push_back(v);
      }
      std::sort(fwd[u].begin(), fwd[u].end());
    }
  });
  return core::parallel_reduce(
      n, std::uint64_t{0},
      [&](const core::ChunkRange& c) {
        std::uint64_t triangles = 0;
        for (std::size_t u = c.begin; u < c.end; ++u) {
          for (NodeId v : fwd[u]) {
            // Count |fwd[u] ∩ fwd[v]| with a sorted merge.
            auto a = fwd[u].begin();
            auto b = fwd[v].begin();
            while (a != fwd[u].end() && b != fwd[v].end()) {
              if (*a < *b) {
                ++a;
              } else if (*b < *a) {
                ++b;
              } else {
                ++triangles;
                ++a;
                ++b;
              }
            }
          }
        }
        return triangles;
      },
      [](std::uint64_t acc, std::uint64_t t) { return acc + t; });
}

double transitivity(const CsrGraph& g) {
  std::uint64_t wedges = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const std::uint64_t d = g.degree(u);
    wedges += d * (d - 1) / 2;
  }
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(triangle_count(g)) /
         static_cast<double>(wedges);
}

}  // namespace sybil::graph
