#include "graph/graph.h"

#include <algorithm>
#include <cassert>

namespace sybil::graph {

NodeId TimestampedGraph::add_node() {
  adj_.emplace_back();
  return static_cast<NodeId>(adj_.size() - 1);
}

void TimestampedGraph::ensure_nodes(NodeId n) {
  if (n > adj_.size()) adj_.resize(n);
}

bool TimestampedGraph::add_edge(NodeId u, NodeId v, Time t, bool weak) {
  assert(u < node_count() && v < node_count());
  if (u == v || has_edge(u, v)) return false;
  adj_[u].push_back({v, t, weak});
  adj_[v].push_back({u, t, weak});
  ++edge_count_;
  return true;
}

TimestampedGraph TimestampedGraph::from_adjacency(
    std::vector<std::vector<Neighbor>> adj) {
  TimestampedGraph g;
  std::uint64_t half_edges = 0;
  for (const auto& list : adj) half_edges += list.size();
  assert(half_edges % 2 == 0);
  g.adj_ = std::move(adj);
  g.edge_count_ = half_edges / 2;
  return g;
}

bool TimestampedGraph::has_edge(NodeId u, NodeId v) const {
  // Scan the shorter list; adjacency lists in social graphs are short on
  // average, and the simulator's hot path keeps a separate intent check.
  const auto& a = adj_[u].size() <= adj_[v].size() ? adj_[u] : adj_[v];
  const NodeId target = adj_[u].size() <= adj_[v].size() ? v : u;
  return std::any_of(a.begin(), a.end(),
                     [target](const Neighbor& n) { return n.node == target; });
}

std::optional<Time> TimestampedGraph::edge_time(NodeId u, NodeId v) const {
  const auto& a = adj_[u].size() <= adj_[v].size() ? adj_[u] : adj_[v];
  const NodeId target = adj_[u].size() <= adj_[v].size() ? v : u;
  for (const Neighbor& n : a) {
    if (n.node == target) return n.created_at;
  }
  return std::nullopt;
}

}  // namespace sybil::graph
