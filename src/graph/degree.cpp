#include "graph/degree.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sybil::graph {

std::vector<double> degree_sequence(const CsrGraph& g) {
  std::vector<double> out(g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    out[u] = static_cast<double>(g.degree(u));
  }
  return out;
}

std::vector<double> degree_sequence(const CsrGraph& g,
                                    std::span<const NodeId> nodes) {
  std::vector<double> out;
  out.reserve(nodes.size());
  for (NodeId u : nodes) out.push_back(static_cast<double>(g.degree(u)));
  return out;
}

std::vector<double> masked_degree_sequence(const CsrGraph& g,
                                           std::span<const NodeId> nodes,
                                           const std::vector<bool>& mask) {
  if (mask.size() != g.node_count()) {
    throw std::invalid_argument("masked_degree: mask size mismatch");
  }
  std::vector<double> out;
  out.reserve(nodes.size());
  for (NodeId u : nodes) {
    std::uint64_t d = 0;
    for (NodeId v : g.neighbors(u)) d += mask[v] ? 1 : 0;
    out.push_back(static_cast<double>(d));
  }
  return out;
}

std::vector<std::uint64_t> degree_histogram(const CsrGraph& g) {
  NodeId max_deg = 0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    max_deg = std::max(max_deg, g.degree(u));
  }
  std::vector<std::uint64_t> hist(static_cast<std::size_t>(max_deg) + 1, 0);
  for (NodeId u = 0; u < g.node_count(); ++u) ++hist[g.degree(u)];
  return hist;
}

double fit_power_law_alpha(std::span<const double> degrees, double x_min) {
  if (!(x_min > 0.0)) throw std::invalid_argument("power-law: x_min <= 0");
  double log_sum = 0.0;
  std::uint64_t n = 0;
  for (double d : degrees) {
    if (d >= x_min) {
      log_sum += std::log(d / x_min);
      ++n;
    }
  }
  if (n < 2 || !(log_sum > 0.0)) {
    throw std::domain_error("power-law: insufficient tail data");
  }
  return 1.0 + static_cast<double>(n) / log_sum;
}

}  // namespace sybil::graph
