#include "graph/io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace sybil::graph {

void save_edge_list(const TimestampedGraph& g, std::ostream& os) {
  os << "nodes " << g.node_count() << '\n';
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (const Neighbor& nb : g.neighbors(u)) {
      if (u < nb.node) {
        os << u << ' ' << nb.node << ' ' << nb.created_at << '\n';
      }
    }
  }
}

void save_edge_list(const TimestampedGraph& g, const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open for writing: " + path);
  save_edge_list(g, os);
  if (!os) throw std::runtime_error("write failed: " + path);
}

TimestampedGraph load_edge_list(std::istream& is) {
  std::string keyword;
  std::uint64_t n = 0;
  if (!(is >> keyword >> n) || keyword != "nodes") {
    throw std::runtime_error("edge list: missing 'nodes N' header");
  }
  TimestampedGraph g(static_cast<NodeId>(n));
  std::string line;
  std::getline(is, line);  // consume header remainder
  std::uint64_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::uint64_t u = 0, v = 0;
    double t = 0.0;
    if (!(ls >> u >> v)) {
      throw std::runtime_error("edge list: parse error at line " +
                               std::to_string(line_no));
    }
    ls >> t;  // optional timestamp
    if (u >= n || v >= n || u == v) {
      throw std::runtime_error("edge list: invalid edge at line " +
                               std::to_string(line_no));
    }
    g.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v), t);
  }
  return g;
}

TimestampedGraph load_edge_list(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open for reading: " + path);
  return load_edge_list(is);
}

}  // namespace sybil::graph
