#include "graph/io.h"

#include <fstream>
#include <limits>
#include <sstream>

#include "io/error.h"
#include "io/vfs.h"

namespace sybil::graph {

using io::SnapshotError;
using io::SnapshotErrorCode;

void save_edge_list(const TimestampedGraph& g, std::ostream& os) {
  // max_digits10 keeps timestamps round-trip exact; the format stays
  // lossy in other ways (see graph/io.h).
  const auto old_precision =
      os.precision(std::numeric_limits<double>::max_digits10);
  os << "nodes " << g.node_count() << '\n';
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (const Neighbor& nb : g.neighbors(u)) {
      if (u < nb.node) {
        os << u << ' ' << nb.node << ' ' << nb.created_at << '\n';
      }
    }
  }
  os.precision(old_precision);
}

void save_edge_list(const TimestampedGraph& g, const std::string& path) {
  // Serialize in memory, then write through the vfs: storage faults
  // (ENOSPC/EIO/short write) surface as typed io::VfsError — including
  // close-time write-back failures the old ofstream destructor
  // silently swallowed — and are injectable in tests.
  std::ostringstream os;
  save_edge_list(g, os);
  const std::string text = os.str();
  auto f = io::default_vfs()->open(path, io::VfsMode::kTruncate);
  if (!text.empty()) f->write(text.data(), text.size());
  f->close();
}

namespace {

[[noreturn]] void fail(SnapshotErrorCode code, std::uint64_t line_no,
                       const std::string& what) {
  throw SnapshotError(code, "edge list: " + what + " at line " +
                                std::to_string(line_no));
}

bool only_whitespace(const std::string& s) {
  return s.find_first_not_of(" \t\r") == std::string::npos;
}

}  // namespace

TimestampedGraph load_edge_list(std::istream& is) {
  std::string keyword;
  std::uint64_t n = 0;
  if (!(is >> keyword >> n) || keyword != "nodes") {
    throw SnapshotError(SnapshotErrorCode::kMalformedSection,
                        "edge list: missing 'nodes N' header");
  }
  if (n > std::numeric_limits<NodeId>::max()) {
    throw SnapshotError(SnapshotErrorCode::kFormatViolation,
                        "edge list: node count exceeds 32-bit id space");
  }
  TimestampedGraph g(static_cast<NodeId>(n));
  std::string line;
  std::getline(is, line);  // header remainder
  if (!only_whitespace(line)) {
    throw SnapshotError(SnapshotErrorCode::kMalformedSection,
                        "edge list: trailing characters after header");
  }
  std::uint64_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    if (only_whitespace(line)) continue;
    std::istringstream ls(line);
    std::uint64_t u = 0, v = 0;
    if (!(ls >> u >> v)) {
      fail(SnapshotErrorCode::kMalformedSection, line_no,
           "expected 'u v [t]'");
    }
    double t = 0.0;
    if (!(ls >> t)) {
      // No third token is fine (timestamp defaults to 0); a third token
      // that is not a number is not.
      if (!ls.eof()) {
        fail(SnapshotErrorCode::kMalformedSection, line_no,
             "malformed timestamp");
      }
    } else {
      std::string junk;
      if (ls >> junk) {
        fail(SnapshotErrorCode::kMalformedSection, line_no,
             "trailing characters after edge");
      }
    }
    if (u >= n || v >= n) {
      fail(SnapshotErrorCode::kFormatViolation, line_no,
           "endpoint out of range");
    }
    if (u == v) {
      fail(SnapshotErrorCode::kFormatViolation, line_no, "self-loop");
    }
    if (!g.add_edge(static_cast<NodeId>(u), static_cast<NodeId>(v), t)) {
      fail(SnapshotErrorCode::kFormatViolation, line_no, "duplicate edge");
    }
  }
  return g;
}

TimestampedGraph load_edge_list(const std::string& path) {
  std::ifstream is(path);
  if (!is) {
    throw SnapshotError(SnapshotErrorCode::kOpenFailed,
                        "cannot open for reading: " + path);
  }
  return load_edge_list(is);
}

}  // namespace sybil::graph
