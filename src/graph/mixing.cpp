#include "graph/mixing.h"

#include <cmath>
#include <stdexcept>

#include "graph/walks.h"

namespace sybil::graph {

double lazy_walk_lambda2(const CsrGraph& g, std::size_t iterations,
                         std::uint64_t seed) {
  const NodeId n = g.node_count();
  if (n < 2 || g.edge_count() == 0) {
    throw std::invalid_argument("lambda2: need a connected graph");
  }
  // Stationary distribution π ∝ degree. Work in the π-weighted inner
  // product, where P is self-adjoint: <x, y>_π = Σ π_i x_i y_i.
  const double two_m = 2.0 * static_cast<double>(g.edge_count());
  std::vector<double> pi(n);
  for (NodeId u = 0; u < n; ++u) {
    pi[u] = static_cast<double>(g.degree(u)) / two_m;
  }

  // Seeded random start vector (a structured start can be orthogonal to
  // the slow mode), deflated against the constant function — the top
  // eigenvector of P in this inner product.
  stats::Rng rng(seed);
  std::vector<double> x(n), next(n);
  for (NodeId u = 0; u < n; ++u) x[u] = rng.uniform(-1.0, 1.0);
  const auto deflate = [&](std::vector<double>& v) {
    double mean = 0.0;
    for (NodeId u = 0; u < n; ++u) mean += pi[u] * v[u];
    for (NodeId u = 0; u < n; ++u) v[u] -= mean;
  };
  const auto norm_pi = [&](const std::vector<double>& v) {
    double s = 0.0;
    for (NodeId u = 0; u < n; ++u) s += pi[u] * v[u] * v[u];
    return std::sqrt(s);
  };

  deflate(x);
  double lambda = 0.0;
  for (std::size_t it = 0; it < iterations; ++it) {
    // next = P_lazy x = (x + D^-1 A x) / 2.
    for (NodeId u = 0; u < n; ++u) {
      double acc = 0.0;
      for (NodeId v : g.neighbors(u)) acc += x[v];
      const double d = std::max<double>(1.0, g.degree(u));
      next[u] = 0.5 * (x[u] + acc / d);
    }
    deflate(next);
    const double norm = norm_pi(next);
    if (!(norm > 1e-300)) return 0.0;  // x was (numerically) stationary
    lambda = norm / std::max(norm_pi(x), 1e-300);
    for (NodeId u = 0; u < n; ++u) x[u] = next[u] / norm;
  }
  // The lazy walk has spectrum in [0, 1]; clamp numerical drift.
  return std::min(std::max(lambda, 0.0), 1.0 - 1e-12);
}

double escape_probability(const CsrGraph& g,
                          const std::vector<NodeId>& members,
                          std::size_t walk_length, std::size_t walks,
                          stats::Rng& rng) {
  if (members.empty() || walks == 0) {
    throw std::invalid_argument("escape: empty member set or no walks");
  }
  std::vector<bool> inside(g.node_count(), false);
  for (NodeId m : members) inside.at(m) = true;
  std::size_t escaped = 0;
  for (std::size_t w = 0; w < walks; ++w) {
    const NodeId start = members[rng.uniform_index(members.size())];
    const NodeId end = random_walk_endpoint(g, start, walk_length, rng);
    escaped += inside[end] ? 0 : 1;
  }
  return static_cast<double>(escaped) / static_cast<double>(walks);
}

}  // namespace sybil::graph
