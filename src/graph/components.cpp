#include "graph/components.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace sybil::graph {

UnionFind::UnionFind(std::size_t n)
    : parent_(n), rank_(n, 0), size_(n, 1), sets_(n) {
  std::iota(parent_.begin(), parent_.end(), 0u);
}

std::size_t UnionFind::find(std::size_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::unite(std::size_t a, std::size_t b) {
  a = find(a);
  b = find(b);
  if (a == b) return false;
  if (rank_[a] < rank_[b]) std::swap(a, b);
  parent_[b] = static_cast<std::uint32_t>(a);
  size_[a] += size_[b];
  if (rank_[a] == rank_[b]) ++rank_[a];
  --sets_;
  return true;
}

std::size_t UnionFind::set_size(std::size_t x) { return size_[find(x)]; }

std::vector<std::uint32_t> Components::by_size_desc() const {
  std::vector<std::uint32_t> ids(size.size());
  std::iota(ids.begin(), ids.end(), 0u);
  std::sort(ids.begin(), ids.end(), [this](std::uint32_t a, std::uint32_t b) {
    return size[a] != size[b] ? size[a] > size[b] : a < b;
  });
  return ids;
}

std::uint32_t Components::largest() const {
  if (size.empty()) throw std::logic_error("components: empty decomposition");
  return static_cast<std::uint32_t>(
      std::max_element(size.begin(), size.end()) - size.begin());
}

std::vector<NodeId> Components::members(std::uint32_t component) const {
  std::vector<NodeId> out;
  for (NodeId u = 0; u < label.size(); ++u) {
    if (label[u] == component) out.push_back(u);
  }
  return out;
}

namespace {

Components decompose(const CsrGraph& g, const std::vector<bool>* mask) {
  const NodeId n = g.node_count();
  UnionFind uf(n);
  for (NodeId u = 0; u < n; ++u) {
    if (mask && !(*mask)[u]) continue;
    for (NodeId v : g.neighbors(u)) {
      if (u < v && (!mask || (*mask)[v])) uf.unite(u, v);
    }
  }
  Components out;
  out.label.assign(n, Components::kNone);
  std::vector<std::uint32_t> root_to_id(n, Components::kNone);
  for (NodeId u = 0; u < n; ++u) {
    if (mask && !(*mask)[u]) continue;
    const auto root = static_cast<std::uint32_t>(uf.find(u));
    if (root_to_id[root] == Components::kNone) {
      root_to_id[root] = static_cast<std::uint32_t>(out.size.size());
      out.size.push_back(0);
    }
    out.label[u] = root_to_id[root];
    ++out.size[out.label[u]];
  }
  return out;
}

}  // namespace

Components connected_components(const CsrGraph& g) {
  return decompose(g, nullptr);
}

Components connected_components_masked(const CsrGraph& g,
                                       const std::vector<bool>& mask) {
  if (mask.size() != g.node_count()) {
    throw std::invalid_argument("components: mask size mismatch");
  }
  return decompose(g, &mask);
}

}  // namespace sybil::graph
