#include "graph/dynamic_graph.h"

#include <algorithm>

namespace sybil::graph {

DynamicGraph::DynamicGraph(const TimestampedGraph& base) {
  const NodeId n = base.node_count();
  chrono_.resize(n);
  sorted_.resize(n);
  dirty_flag_.assign(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    const auto row = base.neighbors(u);
    chrono_[u].assign(row.begin(), row.end());
    sorted_[u].resize(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) sorted_[u][i] = row[i].node;
    std::sort(sorted_[u].begin(), sorted_[u].end());
  }
  edge_count_ = base.edge_count();
}

void DynamicGraph::ensure_nodes(NodeId n) {
  if (n <= node_count()) return;
  chrono_.resize(n);
  sorted_.resize(n);
  dirty_flag_.resize(n, 0);
  ++version_;
}

bool DynamicGraph::add_edge(NodeId u, NodeId v, Time t, bool weak) {
  if (u == v) return false;
  ensure_nodes(std::max(u, v) + 1);
  auto& su = sorted_[u];
  const auto it = std::lower_bound(su.begin(), su.end(), v);
  if (it != su.end() && *it == v) return false;  // duplicate
  su.insert(it, v);
  auto& sv = sorted_[v];
  sv.insert(std::lower_bound(sv.begin(), sv.end(), u), u);
  chrono_[u].push_back(Neighbor{v, t, weak});
  chrono_[v].push_back(Neighbor{u, t, weak});
  ++edge_count_;
  ++version_;
  if (dirty_flag_[u] == 0) {
    dirty_flag_[u] = 1;
    dirty_.push_back(u);
    dirty_sorted_ = false;
  }
  if (dirty_flag_[v] == 0) {
    dirty_flag_[v] = 1;
    dirty_.push_back(v);
    dirty_sorted_ = false;
  }
  return true;
}

bool DynamicGraph::has_edge(NodeId u, NodeId v) const {
  if (u >= node_count()) return false;
  const auto& su = sorted_[u];
  return std::binary_search(su.begin(), su.end(), v);
}

std::span<const NodeId> DynamicGraph::dirty() const {
  if (!dirty_sorted_) {
    std::sort(dirty_.begin(), dirty_.end());
    dirty_sorted_ = true;
  }
  return dirty_;
}

void DynamicGraph::mark_dirty(NodeId u) {
  ensure_nodes(u + 1);
  if (dirty_flag_[u] != 0) return;
  dirty_flag_[u] = 1;
  dirty_.push_back(u);
  dirty_sorted_ = false;
}

void DynamicGraph::clear_dirty() {
  for (const NodeId u : dirty_) dirty_flag_[u] = 0;
  dirty_.clear();
  dirty_sorted_ = true;
}

const NeighborView& DynamicGraph::view() const {
  if (view_version_ == version_) return view_;
  const NodeId n = node_count();
  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    offsets[u + 1] = offsets[u] + chrono_[u].size();
  }
  std::vector<NodeId> targets(offsets[n]);
  std::vector<NodeId> sorted_targets(offsets[n]);
  for (NodeId u = 0; u < n; ++u) {
    std::uint64_t at = offsets[u];
    for (const Neighbor& nb : chrono_[u]) targets[at++] = nb.node;
    std::copy(sorted_[u].begin(), sorted_[u].end(),
              sorted_targets.begin() + static_cast<std::ptrdiff_t>(offsets[u]));
  }
  view_ = NeighborView::with_sorted(
      CsrGraph::from_rows(std::move(offsets), std::move(targets)),
      std::move(sorted_targets));
  view_version_ = version_;
  return view_;
}

}  // namespace sybil::graph
