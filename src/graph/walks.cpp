#include "graph/walks.h"

#include <cassert>
#include <stdexcept>
#include <unordered_map>

#include "core/parallel.h"
#include "stats/distributions.h"

namespace sybil::graph {

std::vector<NodeId> random_walk(const CsrGraph& g, NodeId start,
                                std::size_t length, stats::Rng& rng) {
  std::vector<NodeId> path;
  path.reserve(length + 1);
  path.push_back(start);
  NodeId cur = start;
  for (std::size_t i = 0; i < length; ++i) {
    const auto nbrs = g.neighbors(cur);
    if (nbrs.empty()) break;
    cur = nbrs[rng.uniform_index(nbrs.size())];
    path.push_back(cur);
  }
  return path;
}

NodeId random_walk_endpoint(const CsrGraph& g, NodeId start,
                            std::size_t length, stats::Rng& rng) {
  NodeId cur = start;
  for (std::size_t i = 0; i < length; ++i) {
    const auto nbrs = g.neighbors(cur);
    if (nbrs.empty()) break;
    cur = nbrs[rng.uniform_index(nbrs.size())];
  }
  return cur;
}

std::vector<std::uint64_t> walk_visit_counts(const CsrGraph& g, NodeId start,
                                             std::size_t length,
                                             std::size_t walks,
                                             stats::Rng& rng) {
  std::vector<std::uint64_t> counts(g.node_count(), 0);
  for (std::size_t w = 0; w < walks; ++w) {
    for (NodeId u : random_walk(g, start, length, rng)) ++counts[u];
  }
  return counts;
}

std::vector<std::uint64_t> endpoint_histogram(const CsrGraph& g,
                                              std::span<const NodeId> starts,
                                              std::size_t walks_per_start,
                                              std::size_t length,
                                              std::uint64_t master_seed) {
  using Histogram = std::vector<std::uint64_t>;
  return core::parallel_reduce(
      starts.size(), Histogram(g.node_count(), 0),
      [&](const core::ChunkRange& c) {
        Histogram local(g.node_count(), 0);
        stats::Rng rng = core::chunk_rng(master_seed, c.index);
        for (std::size_t i = c.begin; i < c.end; ++i) {
          for (std::size_t w = 0; w < walks_per_start; ++w) {
            ++local[random_walk_endpoint(g, starts[i], length, rng)];
          }
        }
        return local;
      },
      [](Histogram acc, const Histogram& partial) {
        for (std::size_t v = 0; v < acc.size(); ++v) acc[v] += partial[v];
        return acc;
      });
}

RouteTable::RouteTable(const CsrGraph& g, stats::Rng& rng) {
  const NodeId n = g.node_count();
  offsets_.assign(n + 1, 0);
  for (NodeId u = 0; u < n; ++u) offsets_[u + 1] = offsets_[u] + g.degree(u);
  perm_.resize(offsets_[n]);
  reverse_index_.resize(offsets_[n]);

  for (NodeId u = 0; u < n; ++u) {
    std::vector<std::uint32_t> p(g.degree(u));
    for (std::uint32_t i = 0; i < p.size(); ++i) p[i] = i;
    stats::shuffle(rng, p);
    std::copy(p.begin(), p.end(), perm_.begin() + static_cast<std::ptrdiff_t>(offsets_[u]));
  }

  // reverse_index_[pos(u, j)] = index of u within the row of
  // v = neighbors(u)[j]. Built with one hash pass over directed edges.
  std::unordered_map<std::uint64_t, std::uint32_t> index_of;
  index_of.reserve(offsets_[n]);
  for (NodeId u = 0; u < n; ++u) {
    const auto nbrs = g.neighbors(u);
    for (std::uint32_t j = 0; j < nbrs.size(); ++j) {
      const std::uint64_t key =
          (static_cast<std::uint64_t>(u) << 32) | nbrs[j];
      index_of.emplace(key, j);
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    const auto nbrs = g.neighbors(u);
    for (std::uint32_t j = 0; j < nbrs.size(); ++j) {
      const std::uint64_t back_key =
          (static_cast<std::uint64_t>(nbrs[j]) << 32) | u;
      reverse_index_[offsets_[u] + j] = index_of.at(back_key);
    }
  }
}

std::vector<RouteTable::Hop> RouteTable::route_hops(const CsrGraph& g,
                                                    NodeId start,
                                                    std::size_t first_edge,
                                                    std::size_t length) const {
  if (first_edge >= g.degree(start)) {
    throw std::out_of_range("route: first_edge out of range");
  }
  std::vector<Hop> hops;
  hops.reserve(length + 1);
  NodeId cur = start;
  auto out_idx = static_cast<std::uint32_t>(first_edge);
  hops.push_back({cur, out_idx});
  for (std::size_t step = 0; step < length; ++step) {
    const std::uint64_t pos = offsets_[cur] + out_idx;
    const NodeId next = g.neighbors(cur)[out_idx];
    const std::uint32_t in_idx = reverse_index_[pos];
    cur = next;
    out_idx = perm_[offsets_[cur] + in_idx];
    hops.push_back({cur, out_idx});
  }
  return hops;
}

std::vector<NodeId> RouteTable::route(const CsrGraph& g, NodeId start,
                                      std::size_t first_edge,
                                      std::size_t length) const {
  const auto hops = route_hops(g, start, first_edge, length);
  std::vector<NodeId> nodes;
  nodes.reserve(hops.size());
  for (const Hop& h : hops) nodes.push_back(h.node);
  return nodes;
}

}  // namespace sybil::graph
