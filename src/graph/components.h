// Connected components via union-find, plus subgraph-restricted variants.
//
// The topology analysis (Figs 5-7, Table 2) needs components of the
// *Sybil-induced* subgraph — components over a node subset — so the API
// supports both whole-graph and mask-restricted decomposition.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.h"

namespace sybil::graph {

/// Weighted-union + path-halving disjoint-set forest.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n);

  std::size_t find(std::size_t x);
  /// Returns true if the two sets were merged (false if already joined).
  bool unite(std::size_t a, std::size_t b);
  bool connected(std::size_t a, std::size_t b) { return find(a) == find(b); }
  std::size_t set_count() const noexcept { return sets_; }
  std::size_t size() const noexcept { return parent_.size(); }
  /// Number of elements in x's set.
  std::size_t set_size(std::size_t x);

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> rank_;
  std::vector<std::uint32_t> size_;
  std::size_t sets_;
};

/// Result of a component decomposition.
struct Components {
  /// component id per node; nodes excluded by the mask get kNone.
  std::vector<std::uint32_t> label;
  /// size of each component, indexed by component id.
  std::vector<std::uint32_t> size;

  static constexpr std::uint32_t kNone = 0xffffffffu;

  std::size_t count() const noexcept { return size.size(); }
  /// Component ids sorted by decreasing size.
  std::vector<std::uint32_t> by_size_desc() const;
  /// Id of the largest component. Precondition: count() > 0.
  std::uint32_t largest() const;
  /// Node ids belonging to the given component.
  std::vector<NodeId> members(std::uint32_t component) const;
};

/// Components of the whole graph.
Components connected_components(const CsrGraph& g);

/// Components of the subgraph induced by nodes with mask[node] == true.
/// Edges with either endpoint unmasked are ignored. mask.size() must
/// equal g.node_count().
Components connected_components_masked(const CsrGraph& g,
                                       const std::vector<bool>& mask);

}  // namespace sybil::graph
