#include "graph/neighbor_view.h"

#include <algorithm>
#include <stdexcept>

#include "core/parallel.h"

namespace sybil::graph {

NeighborView::NeighborView(CsrGraph csr) : csr_(std::move(csr)) {
  const auto targets = csr_.targets();
  sorted_targets_.assign(targets.begin(), targets.end());
  // Each row is sorted independently, so the result is a pure function
  // of the snapshot — bit-identical for any SYBIL_THREADS.
  const auto off = csr_.offsets();
  core::parallel_for(csr_.node_count(), [&](const core::ChunkRange& c) {
    for (std::size_t u = c.begin; u < c.end; ++u) {
      std::sort(sorted_targets_.begin() + static_cast<std::ptrdiff_t>(off[u]),
                sorted_targets_.begin() +
                    static_cast<std::ptrdiff_t>(off[u + 1]));
    }
  });
}

NeighborView NeighborView::with_sorted(CsrGraph csr,
                                       std::vector<NodeId> sorted_targets) {
  if (sorted_targets.size() != csr.targets().size()) {
    throw std::invalid_argument("neighbor view: sorted twin size mismatch");
  }
  NeighborView view;
  view.csr_ = std::move(csr);
  view.sorted_targets_ = std::move(sorted_targets);
  return view;
}

bool NeighborView::has_edge(NodeId u, NodeId v) const {
  if (u >= node_count()) return false;
  const auto row = sorted(u);
  return std::binary_search(row.begin(), row.end(), v);
}

}  // namespace sybil::graph
