// Cut metrics: internal/cut edge counts and conductance.
//
// Community-based Sybil detection fundamentally hinges on the Sybil
// region being separated by a small cut — equivalently, on the Sybil set
// having low conductance. The paper's Fig 7 / Table 2 argument is that
// wild Sybil components have MORE cut (attack) edges than internal
// (Sybil) edges, i.e. conductance far too high for detection.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.h"

namespace sybil::graph {

struct CutStats {
  std::uint64_t internal_edges = 0;  // both endpoints inside the set
  std::uint64_t cut_edges = 0;       // exactly one endpoint inside
  std::uint64_t volume = 0;          // sum of degrees of the set

  /// cut / min(volume, total_volume - volume); in [0, 1].
  double conductance(std::uint64_t total_volume) const;
};

/// Computes cut statistics for the node set given as a boolean mask.
/// mask.size() must equal g.node_count().
CutStats cut_stats(const CsrGraph& g, const std::vector<bool>& mask);

/// Same, for an explicit member list (internally builds the mask).
CutStats cut_stats(const CsrGraph& g, std::span<const NodeId> members);

/// Total graph volume (2 * edge_count).
std::uint64_t total_volume(const CsrGraph& g);

/// Newman modularity of a labelled partition (labels may be arbitrary
/// uint32 values; kNoLabel nodes are ignored).
double modularity(const CsrGraph& g, std::span<const std::uint32_t> labels);
inline constexpr std::uint32_t kNoLabel = 0xffffffffu;

}  // namespace sybil::graph
