#include "graph/conductance.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace sybil::graph {

double CutStats::conductance(std::uint64_t total_volume) const {
  const std::uint64_t complement = total_volume - volume;
  const std::uint64_t denom = std::min(volume, complement);
  if (denom == 0) return cut_edges == 0 ? 0.0 : 1.0;
  return static_cast<double>(cut_edges) / static_cast<double>(denom);
}

CutStats cut_stats(const CsrGraph& g, const std::vector<bool>& mask) {
  if (mask.size() != g.node_count()) {
    throw std::invalid_argument("cut_stats: mask size mismatch");
  }
  CutStats s;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    if (!mask[u]) continue;
    s.volume += g.degree(u);
    for (NodeId v : g.neighbors(u)) {
      if (mask[v]) {
        if (u < v) ++s.internal_edges;
      } else {
        ++s.cut_edges;
      }
    }
  }
  return s;
}

CutStats cut_stats(const CsrGraph& g, std::span<const NodeId> members) {
  std::vector<bool> mask(g.node_count(), false);
  for (NodeId u : members) mask.at(u) = true;
  return cut_stats(g, mask);
}

std::uint64_t total_volume(const CsrGraph& g) { return 2 * g.edge_count(); }

double modularity(const CsrGraph& g, std::span<const std::uint32_t> labels) {
  if (labels.size() != g.node_count()) {
    throw std::invalid_argument("modularity: label size mismatch");
  }
  const double m2 = static_cast<double>(total_volume(g));
  if (m2 == 0.0) return 0.0;
  std::unordered_map<std::uint32_t, double> internal, volume;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const std::uint32_t cu = labels[u];
    if (cu == kNoLabel) continue;
    volume[cu] += g.degree(u);
    for (NodeId v : g.neighbors(u)) {
      if (labels[v] == cu) internal[cu] += 1.0;  // counted twice per edge
    }
  }
  double q = 0.0;
  for (const auto& [c, vol] : volume) {
    const double in = internal.count(c) ? internal.at(c) : 0.0;
    q += in / m2 - (vol / m2) * (vol / m2);
  }
  return q;
}

}  // namespace sybil::graph
