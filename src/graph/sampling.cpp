#include "graph/sampling.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

#include "stats/distributions.h"

namespace sybil::graph {

std::vector<NodeId> bfs_snowball(const CsrGraph& g, NodeId seed,
                                 std::size_t max_nodes) {
  std::vector<NodeId> out;
  if (max_nodes == 0) return out;
  std::vector<bool> seen(g.node_count(), false);
  std::queue<NodeId> q;
  seen[seed] = true;
  q.push(seed);
  while (!q.empty() && out.size() < max_nodes) {
    const NodeId u = q.front();
    q.pop();
    out.push_back(u);
    for (NodeId v : g.neighbors(u)) {
      if (!seen[v]) {
        seen[v] = true;
        q.push(v);
      }
    }
  }
  return out;
}

BiasedSnowballSampler::BiasedSnowballSampler(const CsrGraph& g, NodeId seed,
                                             double beta, stats::Rng& rng)
    : g_(g), beta_(beta), rng_(rng), seen_(g.node_count(), false) {
  reseed(seed);
}

void BiasedSnowballSampler::reseed(NodeId seed) {
  if (seed >= g_.node_count()) throw std::out_of_range("snowball: bad seed");
  if (!seen_[seed]) {
    seen_[seed] = true;
    frontier_.push_back(seed);
    frontier_weight_.push_back(
        std::pow(static_cast<double>(g_.degree(seed)) + 1.0, beta_));
  }
}

void BiasedSnowballSampler::expand(NodeId u) {
  for (NodeId v : g_.neighbors(u)) {
    if (!seen_[v]) {
      seen_[v] = true;
      frontier_.push_back(v);
      frontier_weight_.push_back(
          std::pow(static_cast<double>(g_.degree(v)) + 1.0, beta_));
    }
  }
}

NodeId BiasedSnowballSampler::pick_frontier_node() {
  const std::size_t idx =
      stats::sample_weighted_once(rng_, frontier_weight_);
  const NodeId u = frontier_[idx];
  frontier_[idx] = frontier_.back();
  frontier_weight_[idx] = frontier_weight_.back();
  frontier_.pop_back();
  frontier_weight_.pop_back();
  return u;
}

std::vector<NodeId> BiasedSnowballSampler::sample(
    std::size_t count, const std::function<bool(NodeId)>& accept) {
  std::vector<NodeId> out;
  out.reserve(count);
  while (out.size() < count && !frontier_.empty()) {
    const NodeId u = pick_frontier_node();
    expand(u);
    if (!accept || accept(u)) out.push_back(u);
  }
  return out;
}

std::vector<NodeId> uniform_node_sample(const CsrGraph& g, std::size_t k,
                                        stats::Rng& rng) {
  const auto raw = stats::sample_distinct(rng, g.node_count(), k);
  return {raw.begin(), raw.end()};
}

std::vector<NodeId> degree_biased_sample(const CsrGraph& g, std::size_t k,
                                         double beta, stats::Rng& rng) {
  std::vector<double> weights(g.node_count());
  for (NodeId u = 0; u < g.node_count(); ++u) {
    weights[u] = std::pow(static_cast<double>(g.degree(u)) + 1.0, beta);
  }
  const stats::AliasSampler alias(weights);
  std::vector<bool> chosen(g.node_count(), false);
  std::vector<NodeId> out;
  out.reserve(k);
  // With replacement, de-duplicated; bounded retries avoid pathological
  // loops when k approaches the node count.
  std::size_t attempts = 0;
  const std::size_t max_attempts = 20 * k + 100;
  while (out.size() < k && attempts++ < max_attempts) {
    const auto u = static_cast<NodeId>(alias(rng));
    if (!chosen[u]) {
      chosen[u] = true;
      out.push_back(u);
    }
  }
  return out;
}

}  // namespace sybil::graph
