// Immutable compressed-sparse-row snapshot of an undirected graph.
//
// All read-heavy algorithms (components, clustering, random walks,
// max-flow construction, sampling) run over this representation: one
// contiguous offsets array plus one contiguous targets array, which is
// dramatically more cache-friendly than per-node vectors for the
// multi-hundred-thousand-node runs the benches perform.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace sybil::graph {

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Snapshot of a timestamped graph (timestamps are dropped; neighbor
  /// order within a row is preserved).
  static CsrGraph from(const TimestampedGraph& g);

  /// Builds from an explicit undirected edge list over nodes [0, n).
  /// Self-loops and duplicate edges must already be removed.
  static CsrGraph from_edges(NodeId node_count,
                             std::span<const std::pair<NodeId, NodeId>> edges);

  NodeId node_count() const noexcept {
    return offsets_.empty() ? 0 : static_cast<NodeId>(offsets_.size() - 1);
  }
  std::uint64_t edge_count() const noexcept { return targets_.size() / 2; }

  std::span<const NodeId> neighbors(NodeId u) const {
    return {targets_.data() + offsets_[u],
            targets_.data() + offsets_[u + 1]};
  }

  NodeId degree(NodeId u) const {
    return static_cast<NodeId>(offsets_[u + 1] - offsets_[u]);
  }

  /// O(degree) membership test.
  bool has_edge(NodeId u, NodeId v) const;

  /// All undirected edges as (u, v) with u < v, in row order.
  std::vector<std::pair<NodeId, NodeId>> edges() const;

 private:
  std::vector<std::uint64_t> offsets_;  // size node_count()+1
  std::vector<NodeId> targets_;         // size 2*edge_count()
};

}  // namespace sybil::graph
