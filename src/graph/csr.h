// Immutable compressed-sparse-row snapshot of an undirected graph.
//
// All read-heavy algorithms (components, clustering, random walks,
// max-flow construction, sampling) run over this representation: one
// contiguous offsets array plus one contiguous targets array, which is
// dramatically more cache-friendly than per-node vectors for the
// multi-hundred-thousand-node runs the benches perform.
//
// A CsrGraph either owns its arrays (the from()/from_edges() builders)
// or is a zero-copy *view* over externally owned storage — the io layer
// uses view() to serve a graph directly out of an mmap'd snapshot
// without materializing the arrays (see io/graph_snapshot.h).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace sybil::graph {

class CsrGraph {
 public:
  CsrGraph() = default;

  /// Snapshot of a timestamped graph (timestamps are dropped; neighbor
  /// order within a row is preserved).
  static CsrGraph from(const TimestampedGraph& g);

  /// Builds from an explicit undirected edge list over nodes [0, n).
  /// Self-loops and duplicate edges must already be removed.
  static CsrGraph from_edges(NodeId node_count,
                             std::span<const std::pair<NodeId, NodeId>> edges);

  /// Adopts prebuilt CSR arrays as owning storage (no copy). Used by
  /// DynamicGraph's compactor, which already holds rows in final form.
  /// Preconditions: offsets is a valid CSR offset array (size n+1,
  /// non-decreasing, offsets[0] == 0, offsets[n] == targets.size()).
  static CsrGraph from_rows(std::vector<std::uint64_t> offsets,
                            std::vector<NodeId> targets);

  /// Zero-copy view over CSR arrays owned elsewhere; `backing` keeps the
  /// storage (e.g. a file mapping) alive for the view's lifetime.
  /// Preconditions: offsets is a valid CSR offset array (size n+1,
  /// non-decreasing, offsets[0] == 0, offsets[n] == targets.size()) —
  /// the snapshot loader validates before calling.
  static CsrGraph view(std::span<const std::uint64_t> offsets,
                       std::span<const NodeId> targets,
                       std::shared_ptr<const void> backing);

  // Owning copies re-anchor their spans onto the copied vectors; views
  // share the backing. Defaulted members would leave a copied owner's
  // spans pointing into the source.
  CsrGraph(const CsrGraph& other);
  CsrGraph& operator=(const CsrGraph& other);
  CsrGraph(CsrGraph&& other) noexcept;
  CsrGraph& operator=(CsrGraph&& other) noexcept;
  ~CsrGraph() = default;

  NodeId node_count() const noexcept {
    return offsets_.empty() ? 0 : static_cast<NodeId>(offsets_.size() - 1);
  }
  std::uint64_t edge_count() const noexcept { return targets_.size() / 2; }

  std::span<const NodeId> neighbors(NodeId u) const {
    return {targets_.data() + offsets_[u],
            targets_.data() + offsets_[u + 1]};
  }

  NodeId degree(NodeId u) const {
    return static_cast<NodeId>(offsets_[u + 1] - offsets_[u]);
  }

  /// O(degree) membership test.
  bool has_edge(NodeId u, NodeId v) const;

  /// All undirected edges as (u, v) with u < v, in row order.
  std::vector<std::pair<NodeId, NodeId>> edges() const;

  /// Raw CSR arrays (what the snapshot writer serializes).
  std::span<const std::uint64_t> offsets() const noexcept { return offsets_; }
  std::span<const NodeId> targets() const noexcept { return targets_; }

  /// True when this graph references external storage instead of
  /// owning its arrays.
  bool is_view() const noexcept { return backing_ != nullptr; }

 private:
  void anchor() noexcept {
    offsets_ = offsets_store_;
    targets_ = targets_store_;
  }

  // Owning storage (empty for views).
  std::vector<std::uint64_t> offsets_store_;
  std::vector<NodeId> targets_store_;
  // The arrays algorithms read: either the stores above or external
  // memory kept alive by backing_.
  std::span<const std::uint64_t> offsets_;
  std::span<const NodeId> targets_;
  std::shared_ptr<const void> backing_;
};

}  // namespace sybil::graph
