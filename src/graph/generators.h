// Synthetic graph generators.
//
// Used (a) to seed the pre-existing "established" social graph that the
// OSN simulation window starts from, (b) to build the synthetic graphs
// with injected Sybil communities on which prior Sybil defenses were
// validated, and (c) in tests. The OSN-like generator combines
// preferential attachment (heavy-tailed degrees) with triadic closure
// (high clustering), which are the two properties the paper's feature
// analysis depends on.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "stats/rng.h"

namespace sybil::graph {

/// Erdős–Rényi G(n, p). Timestamps are sequential insertion indices.
TimestampedGraph erdos_renyi(NodeId n, double p, stats::Rng& rng);

/// Barabási–Albert preferential attachment: each new node attaches to
/// `m` existing nodes chosen proportional to degree. n > m >= 1.
TimestampedGraph barabasi_albert(NodeId n, NodeId m, stats::Rng& rng);

/// Watts–Strogatz small world: ring of n nodes, each linked to k nearest
/// neighbors (k even), each edge rewired with probability beta.
TimestampedGraph watts_strogatz(NodeId n, NodeId k, double beta,
                                stats::Rng& rng);

/// Parameters for the OSN-like generator.
struct OsnGraphParams {
  NodeId nodes = 100'000;
  /// Mean number of links each arriving node creates.
  double mean_links = 12.0;
  /// Probability that a link is closed via a friend-of-friend (triadic
  /// closure) rather than by preferential attachment; drives clustering.
  double triadic_closure = 0.55;
  /// Preferential-attachment strength: target picked ∝ (degree + 1)^beta.
  double pa_beta = 1.0;
  /// Regional structure (Renren's school/city networks): nodes are
  /// assigned round-robin to this many communities, and a preferential-
  /// attachment link stays within the node's own community with
  /// probability community_affinity. 1 community = no structure.
  NodeId communities = 1;
  double community_affinity = 0.8;
};

/// Community id of a node under the round-robin assignment used by
/// osn_like_graph.
inline NodeId community_of(NodeId node, const OsnGraphParams& p) noexcept {
  return p.communities <= 1 ? 0 : node % p.communities;
}

/// Social-network-like graph: growth + preferential attachment + triadic
/// closure. Produces heavy-tailed degrees and clustering in the range
/// observed for real OSNs (~0.02-0.2 depending on triadic_closure).
TimestampedGraph osn_like_graph(const OsnGraphParams& params,
                                stats::Rng& rng);

/// Injects a classic "tight-knit" Sybil region into a copy of `honest`:
/// `sybils` new nodes wired as an ER graph with density `internal_p`
/// among themselves, plus exactly `attack_edges` edges to uniformly
/// random honest nodes. Returns the combined graph; Sybil ids are
/// [honest.node_count(), honest.node_count() + sybils).
TimestampedGraph inject_sybil_community(const TimestampedGraph& honest,
                                        NodeId sybils, double internal_p,
                                        std::uint64_t attack_edges,
                                        stats::Rng& rng);

}  // namespace sybil::graph
