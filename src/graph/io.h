// Edge-list serialization: plain-text interchange for graphs, so that
// simulation outputs can be saved, reloaded and inspected with standard
// tools. Format: one "u v t" triple per line ("u v" accepted on load,
// timestamp defaults to 0).
//
// The text format is interchange-only and lossy relative to the binary
// snapshots in src/io/ (docs/FORMATS.md §Text edge lists): it drops the
// weak/strong tie flag and per-node adjacency insertion order, carries
// no checksum, and round-trips timestamps through decimal. Use
// io::save_graph_snapshot for full-fidelity persistence.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace sybil::graph {

/// Writes "node_count" header line then one edge per line (u < v).
void save_edge_list(const TimestampedGraph& g, std::ostream& os);
void save_edge_list(const TimestampedGraph& g, const std::string& path);

/// Parses the format produced by save_edge_list. Rejects malformed input
/// with the same typed errors as the binary loaders (io/error.h):
/// kMalformedSection for unparsable lines / trailing junk,
/// kFormatViolation for out-of-range endpoints, self-loops and duplicate
/// edges, kOpenFailed when the path cannot be opened.
TimestampedGraph load_edge_list(std::istream& is);
TimestampedGraph load_edge_list(const std::string& path);

}  // namespace sybil::graph
