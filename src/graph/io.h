// Edge-list serialization: plain-text interchange for graphs, so that
// simulation outputs can be saved, reloaded and inspected with standard
// tools. Format: one "u v t" triple per line ("u v" accepted on load,
// timestamp defaults to 0).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.h"

namespace sybil::graph {

/// Writes "node_count" header line then one edge per line (u < v).
void save_edge_list(const TimestampedGraph& g, std::ostream& os);
void save_edge_list(const TimestampedGraph& g, const std::string& path);

/// Parses the format produced by save_edge_list. Throws std::runtime_error
/// on malformed input (bad header, out-of-range endpoints, self-loops).
TimestampedGraph load_edge_list(std::istream& is);
TimestampedGraph load_edge_list(const std::string& path);

}  // namespace sybil::graph
