// Whole-graph structural metrics used in the measurement-study analyses:
// degree assortativity (are popular users friends with popular users?),
// k-core decomposition (how deep do Sybils embed?), and sampled
// shortest-path statistics.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/csr.h"
#include "stats/rng.h"

namespace sybil::graph {

/// Pearson correlation of endpoint degrees over all edges (each edge
/// contributes both orientations, the standard convention). In [-1, 1];
/// social graphs are usually mildly assortative (> 0).
/// Precondition: at least one edge and non-constant degrees.
double degree_assortativity(const CsrGraph& g);

/// Core number per node (largest k such that the node survives in the
/// k-core). Linear-time peeling.
std::vector<std::uint32_t> core_numbers(const CsrGraph& g);

/// BFS distances from a source; unreachable nodes get kUnreachable.
inline constexpr std::uint32_t kUnreachable = 0xffffffffu;
std::vector<std::uint32_t> bfs_distances(const CsrGraph& g, NodeId source);

/// Shortest-path statistics estimated from `samples` BFS sources.
struct PathStats {
  double mean_distance = 0.0;   // over reachable pairs
  std::uint32_t max_distance = 0;  // observed eccentricity (diameter lower bound)
  std::uint64_t reachable_pairs = 0;
};
PathStats sampled_path_stats(const CsrGraph& g, std::size_t samples,
                             stats::Rng& rng);

}  // namespace sybil::graph
