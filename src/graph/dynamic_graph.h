// Growable graph with edge-arrival deltas and dirty-vertex tracking.
//
// The static pipeline snapshots a TimestampedGraph into a CsrGraph once
// and runs batch algorithms over it. The live service cannot afford
// that: edges arrive one accepted friend request at a time, and the
// incremental defenses (detect::IncrementalSybilRank,
// detect::IncrementalClustering) only want to know *which vertices
// changed* since they last looked. DynamicGraph is that delta API:
//
//   add_edge(u, v, t)   O(deg) sorted insert + chronological append;
//                       marks both endpoints dirty
//   dirty()             the distinct vertices touched since the last
//                       clear_dirty(), ascending
//   view()              a cached NeighborView over the current graph,
//                       rebuilt lazily only when edges arrived since
//                       the last call
//
// Both orderings of NeighborView are maintained *incrementally*: each
// node keeps a chronological row (append) and a sorted row (ordered
// insert), so a view() rebuild is a pure concatenation — no re-sort.
// The chronological rows match what CsrGraph::from(TimestampedGraph)
// would produce for the same arrival sequence, which is what lets the
// incremental SybilRank pin bit-exactness against the batch path.
//
// Not thread-safe; the service drives one DynamicGraph per shard from
// that shard's (serial) pump lane.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "graph/neighbor_view.h"

namespace sybil::graph {

class DynamicGraph {
 public:
  DynamicGraph() = default;

  /// Seeds the dynamic graph from a static base (rows copied; sorted
  /// twins built once). Nothing is marked dirty — the base is the
  /// "already scored" state.
  explicit DynamicGraph(const TimestampedGraph& base);

  NodeId node_count() const noexcept {
    return static_cast<NodeId>(chrono_.size());
  }
  std::uint64_t edge_count() const noexcept { return edge_count_; }

  /// Ensures ids [0, n) exist. New nodes are isolated and not dirty.
  void ensure_nodes(NodeId n);

  /// Adds undirected edge {u, v} at time t and marks both endpoints
  /// dirty. Returns false (and changes nothing, including dirtiness)
  /// for self-loops and duplicate edges. Endpoints beyond the current
  /// node count grow the graph (callers bound ids before offering —
  /// the service reuses IngestOptions::max_account_id).
  bool add_edge(NodeId u, NodeId v, Time t, bool weak = false);

  bool has_edge(NodeId u, NodeId v) const;

  NodeId degree(NodeId u) const {
    return static_cast<NodeId>(chrono_[u].size());
  }

  /// Neighbors of u in arrival order, with timestamps.
  std::span<const Neighbor> chronological(NodeId u) const {
    return chrono_[u];
  }

  /// Neighbors of u in ascending id order.
  std::span<const NodeId> sorted_neighbors(NodeId u) const {
    return sorted_[u];
  }

  /// Distinct vertices with edge activity since the last clear_dirty(),
  /// in ascending id order.
  std::span<const NodeId> dirty() const;

  /// True when u is in the current dirty set.
  bool is_dirty(NodeId u) const {
    return u < dirty_flag_.size() && dirty_flag_[u] != 0;
  }

  /// Re-marks a vertex dirty without touching edges. Checkpoint restore
  /// uses this to rebuild the pending dirty set a crash interrupted.
  void mark_dirty(NodeId u);

  void clear_dirty();

  /// The current graph as a NeighborView (chronological CSR rows plus
  /// the sorted twin). Cached: rebuilt only when edges arrived since the
  /// previous call, and the rebuild concatenates the incrementally
  /// maintained rows — O(V + E) copies, zero sorting. The reference is
  /// invalidated by the next mutating call.
  const NeighborView& view() const;

 private:
  std::vector<std::vector<Neighbor>> chrono_;
  std::vector<std::vector<NodeId>> sorted_;
  std::uint64_t edge_count_ = 0;

  // Dirty set: byte mask for O(1) dedup plus the insertion log; dirty()
  // sorts the log lazily.
  std::vector<std::uint8_t> dirty_flag_;
  mutable std::vector<NodeId> dirty_;
  mutable bool dirty_sorted_ = true;

  // view() cache.
  mutable NeighborView view_;
  mutable std::uint64_t view_version_ = 0;  // structure version at build
  std::uint64_t version_ = 1;               // bumped by every mutation
};

}  // namespace sybil::graph
