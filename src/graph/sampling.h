// Graph sampling strategies.
//
// Snowball sampling biased toward popular nodes is the mechanism the
// paper identifies (Section 3.4, Table 3) behind accidental Sybil edge
// creation: Sybil management tools crawl the graph for high-degree
// targets, and successful Sybils — being high-degree — get sampled by
// other Sybils' tools.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/csr.h"
#include "stats/rng.h"

namespace sybil::graph {

/// Breadth-first snowball sample: from `seed`, explore up to `max_nodes`
/// nodes expanding whole neighborhoods per wave.
std::vector<NodeId> bfs_snowball(const CsrGraph& g, NodeId seed,
                                 std::size_t max_nodes);

/// Popularity-biased snowball sampler.
///
/// Maintains a frontier; at each step picks a frontier node with
/// probability proportional to degree^beta (beta = 0 → uniform,
/// beta > 0 → popularity-biased as the commercial tools advertise),
/// emits it, and adds its neighbors to the frontier. `accept` can veto
/// nodes (e.g. already-friended targets) — vetoed nodes still expand the
/// frontier but are not emitted.
class BiasedSnowballSampler {
 public:
  BiasedSnowballSampler(const CsrGraph& g, NodeId seed, double beta,
                        stats::Rng& rng);

  /// Collects up to `count` sampled targets. Stops early if the reachable
  /// region is exhausted.
  std::vector<NodeId> sample(
      std::size_t count,
      const std::function<bool(NodeId)>& accept = nullptr);

  /// Re-seeds the frontier (keeps the visited set).
  void reseed(NodeId seed);

 private:
  NodeId pick_frontier_node();
  void expand(NodeId u);

  const CsrGraph& g_;
  double beta_;
  stats::Rng& rng_;
  std::vector<NodeId> frontier_;
  std::vector<double> frontier_weight_;
  std::vector<bool> seen_;
};

/// Uniform random node sample without replacement (k <= node_count).
std::vector<NodeId> uniform_node_sample(const CsrGraph& g, std::size_t k,
                                        stats::Rng& rng);

/// Sample k nodes with probability proportional to degree^beta
/// (with replacement; duplicates removed, so may return fewer than k).
std::vector<NodeId> degree_biased_sample(const CsrGraph& g, std::size_t k,
                                         double beta, stats::Rng& rng);

}  // namespace sybil::graph
