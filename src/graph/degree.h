// Degree distribution utilities (Figs 5 and 9 are degree CDFs).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.h"

namespace sybil::graph {

/// Degrees of all nodes, as doubles (ready for EmpiricalCdf).
std::vector<double> degree_sequence(const CsrGraph& g);

/// Degrees of a node subset.
std::vector<double> degree_sequence(const CsrGraph& g,
                                    std::span<const NodeId> nodes);

/// For each node in `nodes`, the number of its neighbors that are inside
/// `mask` — e.g. the "Sybil degree" of each Sybil (edges to other Sybils).
std::vector<double> masked_degree_sequence(const CsrGraph& g,
                                           std::span<const NodeId> nodes,
                                           const std::vector<bool>& mask);

/// Histogram of degree -> node count (index = degree).
std::vector<std::uint64_t> degree_histogram(const CsrGraph& g);

/// Maximum-likelihood power-law exponent fit (Clauset-style, continuous
/// approximation) for degrees >= x_min. Returns alpha; requires at least
/// two qualifying observations.
double fit_power_law_alpha(std::span<const double> degrees, double x_min = 1.0);

}  // namespace sybil::graph
