// Dinic's maximum-flow algorithm.
//
// SumUp assigns unit capacities to social links and computes a max flow
// from voters toward a collector; a Sybil region behind a small edge cut
// can push only cut-many votes. This is a standard capacity-scaling-free
// Dinic implementation over an explicit flow network.
#pragma once

#include <cstdint>
#include <vector>

namespace sybil::graph {

class FlowNetwork {
 public:
  explicit FlowNetwork(std::size_t node_count);

  std::size_t node_count() const noexcept { return head_.size(); }

  /// Adds a directed arc u -> v with the given capacity. Returns the arc
  /// id (its residual twin is id ^ 1).
  std::size_t add_arc(std::size_t u, std::size_t v, std::int64_t capacity);

  /// Adds both directions with the same capacity (an undirected link).
  void add_undirected(std::size_t u, std::size_t v, std::int64_t capacity);

  /// Computes max flow from s to t. May be called once per network
  /// (flows persist; use flow_on to inspect the result).
  std::int64_t max_flow(std::size_t s, std::size_t t);

  /// Remaining (residual) capacity on the arc with the given id. For a
  /// unit-capacity arc, residual 0 after max_flow means the arc carried
  /// its unit of flow.
  std::int64_t residual(std::size_t arc_id) const {
    return arcs_.at(arc_id).cap;
  }

  /// After max_flow: nodes reachable from s in the residual graph —
  /// the s-side of a minimum cut.
  std::vector<bool> min_cut_side(std::size_t s) const;

 private:
  struct Arc {
    std::uint32_t to;
    std::uint32_t next;  // next arc id in u's list, or kNil
    std::int64_t cap;    // residual capacity
  };
  static constexpr std::uint32_t kNil = 0xffffffffu;

  bool bfs_levels(std::size_t s, std::size_t t);
  std::int64_t dfs_push(std::size_t u, std::size_t t, std::int64_t limit);

  std::vector<Arc> arcs_;
  std::vector<std::uint32_t> head_;
  std::vector<std::int32_t> level_;
  std::vector<std::uint32_t> iter_;
};

}  // namespace sybil::graph
