#include "graph/csr.h"

#include <algorithm>
#include <stdexcept>

namespace sybil::graph {

CsrGraph CsrGraph::from(const TimestampedGraph& g) {
  CsrGraph csr;
  const NodeId n = g.node_count();
  csr.offsets_.assign(n + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    csr.offsets_[u + 1] = csr.offsets_[u] + g.degree(u);
  }
  csr.targets_.resize(csr.offsets_[n]);
  for (NodeId u = 0; u < n; ++u) {
    std::uint64_t at = csr.offsets_[u];
    for (const Neighbor& nb : g.neighbors(u)) csr.targets_[at++] = nb.node;
  }
  return csr;
}

CsrGraph CsrGraph::from_edges(
    NodeId node_count, std::span<const std::pair<NodeId, NodeId>> edges) {
  CsrGraph csr;
  csr.offsets_.assign(static_cast<std::size_t>(node_count) + 1, 0);
  for (const auto& [u, v] : edges) {
    if (u >= node_count || v >= node_count) {
      throw std::out_of_range("csr: edge endpoint out of range");
    }
    if (u == v) throw std::invalid_argument("csr: self-loop");
    ++csr.offsets_[u + 1];
    ++csr.offsets_[v + 1];
  }
  for (std::size_t i = 1; i < csr.offsets_.size(); ++i) {
    csr.offsets_[i] += csr.offsets_[i - 1];
  }
  csr.targets_.resize(csr.offsets_.back());
  std::vector<std::uint64_t> cursor(csr.offsets_.begin(),
                                    csr.offsets_.end() - 1);
  for (const auto& [u, v] : edges) {
    csr.targets_[cursor[u]++] = v;
    csr.targets_[cursor[v]++] = u;
  }
  return csr;
}

bool CsrGraph::has_edge(NodeId u, NodeId v) const {
  const auto nbrs = neighbors(u);
  return std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end();
}

std::vector<std::pair<NodeId, NodeId>> CsrGraph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(edge_count());
  for (NodeId u = 0; u < node_count(); ++u) {
    for (NodeId v : neighbors(u)) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

}  // namespace sybil::graph
