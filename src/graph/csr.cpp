#include "graph/csr.h"

#include <algorithm>
#include <stdexcept>

namespace sybil::graph {

CsrGraph::CsrGraph(const CsrGraph& other)
    : offsets_store_(other.offsets_store_),
      targets_store_(other.targets_store_),
      backing_(other.backing_) {
  if (backing_ != nullptr) {
    offsets_ = other.offsets_;
    targets_ = other.targets_;
  } else {
    anchor();
  }
}

CsrGraph& CsrGraph::operator=(const CsrGraph& other) {
  if (this != &other) {
    CsrGraph tmp(other);
    *this = std::move(tmp);
  }
  return *this;
}

CsrGraph::CsrGraph(CsrGraph&& other) noexcept
    : offsets_store_(std::move(other.offsets_store_)),
      targets_store_(std::move(other.targets_store_)),
      backing_(std::move(other.backing_)) {
  // Moved vectors keep their heap buffers, so the source's spans stay
  // valid for owners too — but re-anchor to be explicit.
  if (backing_ != nullptr) {
    offsets_ = other.offsets_;
    targets_ = other.targets_;
  } else {
    anchor();
  }
  other.offsets_ = {};
  other.targets_ = {};
}

CsrGraph& CsrGraph::operator=(CsrGraph&& other) noexcept {
  if (this != &other) {
    offsets_store_ = std::move(other.offsets_store_);
    targets_store_ = std::move(other.targets_store_);
    backing_ = std::move(other.backing_);
    if (backing_ != nullptr) {
      offsets_ = other.offsets_;
      targets_ = other.targets_;
    } else {
      anchor();
    }
    other.offsets_ = {};
    other.targets_ = {};
  }
  return *this;
}

CsrGraph CsrGraph::from(const TimestampedGraph& g) {
  CsrGraph csr;
  const NodeId n = g.node_count();
  csr.offsets_store_.assign(n + 1, 0);
  for (NodeId u = 0; u < n; ++u) {
    csr.offsets_store_[u + 1] = csr.offsets_store_[u] + g.degree(u);
  }
  csr.targets_store_.resize(csr.offsets_store_[n]);
  for (NodeId u = 0; u < n; ++u) {
    std::uint64_t at = csr.offsets_store_[u];
    for (const Neighbor& nb : g.neighbors(u)) {
      csr.targets_store_[at++] = nb.node;
    }
  }
  csr.anchor();
  return csr;
}

CsrGraph CsrGraph::from_edges(
    NodeId node_count, std::span<const std::pair<NodeId, NodeId>> edges) {
  CsrGraph csr;
  csr.offsets_store_.assign(static_cast<std::size_t>(node_count) + 1, 0);
  for (const auto& [u, v] : edges) {
    if (u >= node_count || v >= node_count) {
      throw std::out_of_range("csr: edge endpoint out of range");
    }
    if (u == v) throw std::invalid_argument("csr: self-loop");
    ++csr.offsets_store_[u + 1];
    ++csr.offsets_store_[v + 1];
  }
  for (std::size_t i = 1; i < csr.offsets_store_.size(); ++i) {
    csr.offsets_store_[i] += csr.offsets_store_[i - 1];
  }
  csr.targets_store_.resize(csr.offsets_store_.back());
  std::vector<std::uint64_t> cursor(csr.offsets_store_.begin(),
                                    csr.offsets_store_.end() - 1);
  for (const auto& [u, v] : edges) {
    csr.targets_store_[cursor[u]++] = v;
    csr.targets_store_[cursor[v]++] = u;
  }
  csr.anchor();
  return csr;
}

CsrGraph CsrGraph::from_rows(std::vector<std::uint64_t> offsets,
                             std::vector<NodeId> targets) {
  if (offsets.empty() || offsets.front() != 0 ||
      offsets.back() != targets.size() ||
      !std::is_sorted(offsets.begin(), offsets.end())) {
    throw std::invalid_argument("csr from_rows: malformed offsets");
  }
  CsrGraph csr;
  csr.offsets_store_ = std::move(offsets);
  csr.targets_store_ = std::move(targets);
  csr.anchor();
  return csr;
}

CsrGraph CsrGraph::view(std::span<const std::uint64_t> offsets,
                        std::span<const NodeId> targets,
                        std::shared_ptr<const void> backing) {
  if (backing == nullptr) {
    throw std::invalid_argument("csr view: null backing");
  }
  CsrGraph csr;
  csr.offsets_ = offsets;
  csr.targets_ = targets;
  csr.backing_ = std::move(backing);
  return csr;
}

bool CsrGraph::has_edge(NodeId u, NodeId v) const {
  const auto nbrs = neighbors(u);
  return std::find(nbrs.begin(), nbrs.end(), v) != nbrs.end();
}

std::vector<std::pair<NodeId, NodeId>> CsrGraph::edges() const {
  std::vector<std::pair<NodeId, NodeId>> out;
  out.reserve(edge_count());
  for (NodeId u = 0; u < node_count(); ++u) {
    for (NodeId v : neighbors(u)) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

}  // namespace sybil::graph
