// Timestamped undirected graph.
//
// This is the mutable, growable representation used while the OSN
// simulator runs: edges carry the simulation time at which the friendship
// was established, which is what enables the paper's temporal analysis of
// Sybil edge creation order (Fig 8). Algorithms that only need structure
// take a CsrGraph snapshot (see csr.h) for cache-friendly traversal.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace sybil::graph {

using NodeId = std::uint32_t;

/// Simulation time in hours since the epoch of the run.
using Time = double;

/// A half-edge as stored in an adjacency list.
///
/// `weak` marks ties created by stranger friend requests (no prior
/// relationship), as opposed to pre-existing friendships and friend-of-
/// friend introductions. The behavior models use it: people extend
/// their circle through *strong* ties, which is why a Sybil's victims
/// do not triangulate through the Sybil.
struct Neighbor {
  NodeId node;
  Time created_at;
  bool weak = false;
};

/// Growable undirected graph with edge-creation timestamps.
///
/// Invariants:
///  - no self-loops, no parallel edges;
///  - adjacency is symmetric (u in adj(v) iff v in adj(u), same timestamp);
///  - neighbors within a list appear in insertion (chronological) order,
///    which the temporal analyses rely on.
class TimestampedGraph {
 public:
  TimestampedGraph() = default;
  explicit TimestampedGraph(NodeId node_count) : adj_(node_count) {}

  NodeId node_count() const noexcept {
    return static_cast<NodeId>(adj_.size());
  }
  std::uint64_t edge_count() const noexcept { return edge_count_; }

  /// Appends a new isolated node and returns its id.
  NodeId add_node();

  /// Ensures ids [0, n) exist.
  void ensure_nodes(NodeId n);

  /// Adds undirected edge {u, v} at time t. Returns false (and changes
  /// nothing) if the edge already exists or u == v.
  /// Precondition: u, v < node_count().
  bool add_edge(NodeId u, NodeId v, Time t, bool weak = false);

  bool has_edge(NodeId u, NodeId v) const;

  /// Timestamp of edge {u, v}, or nullopt if absent.
  std::optional<Time> edge_time(NodeId u, NodeId v) const;

  /// Direct adjacency restore for snapshot loading: adopts the lists
  /// as-is (preserving per-node insertion order, which add_edge replay
  /// could not reproduce without the global edge order). Precondition:
  /// `adj` satisfies the class invariants — symmetric, no self-loops or
  /// duplicates; the binary loader validates before calling.
  static TimestampedGraph from_adjacency(
      std::vector<std::vector<Neighbor>> adj);

  /// Neighbors of u in chronological insertion order.
  std::span<const Neighbor> neighbors(NodeId u) const {
    return adj_[u];
  }

  NodeId degree(NodeId u) const {
    return static_cast<NodeId>(adj_[u].size());
  }

 private:
  std::vector<std::vector<Neighbor>> adj_;
  std::uint64_t edge_count_ = 0;
};

}  // namespace sybil::graph
