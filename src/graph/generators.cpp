#include "graph/generators.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/distributions.h"

namespace sybil::graph {

TimestampedGraph erdos_renyi(NodeId n, double p, stats::Rng& rng) {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("er: p out of range");
  TimestampedGraph g(n);
  Time t = 0.0;
  if (p <= 0.0) return g;
  // Geometric skipping (Batagelj-Brandes) for O(n + m) generation.
  const double log_q = std::log1p(-std::min(p, 1.0 - 1e-15));
  std::int64_t v = 1, w = -1;
  const auto nn = static_cast<std::int64_t>(n);
  while (v < nn) {
    const double r = 1.0 - rng.uniform();  // in (0, 1]
    w += 1 + static_cast<std::int64_t>(std::floor(std::log(r) / log_q));
    while (w >= v && v < nn) {
      w -= v;
      ++v;
    }
    if (v < nn) {
      g.add_edge(static_cast<NodeId>(v), static_cast<NodeId>(w), t);
      t += 1.0;
    }
  }
  return g;
}

TimestampedGraph barabasi_albert(NodeId n, NodeId m, stats::Rng& rng) {
  if (m < 1 || n <= m) throw std::invalid_argument("ba: need n > m >= 1");
  TimestampedGraph g(n);
  Time t = 0.0;
  // Repeated-endpoints trick: sampling a uniform entry of `endpoints`
  // is sampling proportional to degree.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * static_cast<std::size_t>(n) * m);
  // Seed clique over the first m+1 nodes.
  for (NodeId u = 0; u <= m; ++u) {
    for (NodeId v = u + 1; v <= m; ++v) {
      g.add_edge(u, v, t);
      t += 1.0;
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (NodeId u = m + 1; u < n; ++u) {
    std::vector<NodeId> chosen;
    chosen.reserve(m);
    std::size_t guard = 0;
    while (chosen.size() < m && guard++ < 50u * m) {
      const NodeId cand = endpoints[rng.uniform_index(endpoints.size())];
      if (std::find(chosen.begin(), chosen.end(), cand) == chosen.end()) {
        chosen.push_back(cand);
      }
    }
    for (NodeId v : chosen) {
      if (g.add_edge(u, v, t)) {
        t += 1.0;
        endpoints.push_back(u);
        endpoints.push_back(v);
      }
    }
  }
  return g;
}

TimestampedGraph watts_strogatz(NodeId n, NodeId k, double beta,
                                stats::Rng& rng) {
  if (k % 2 != 0 || k == 0 || k >= n) {
    throw std::invalid_argument("ws: need even k in (0, n)");
  }
  if (beta < 0.0 || beta > 1.0) {
    throw std::invalid_argument("ws: beta out of range");
  }
  TimestampedGraph g(n);
  Time t = 0.0;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId j = 1; j <= k / 2; ++j) {
      NodeId v = (u + j) % n;
      if (rng.bernoulli(beta)) {
        // Rewire to a uniform non-self, non-duplicate target.
        std::size_t guard = 0;
        NodeId w;
        do {
          w = static_cast<NodeId>(rng.uniform_index(n));
        } while ((w == u || g.has_edge(u, w)) && guard++ < 64);
        if (w != u && !g.has_edge(u, w)) v = w;
      }
      g.add_edge(u, v, t);
      t += 1.0;
    }
  }
  return g;
}

TimestampedGraph osn_like_graph(const OsnGraphParams& params,
                                stats::Rng& rng) {
  const NodeId n = params.nodes;
  if (n < 3) throw std::invalid_argument("osn graph: too few nodes");
  if (params.communities > 1 && n < 2 * params.communities) {
    throw std::invalid_argument("osn graph: fewer than 2 nodes/community");
  }
  TimestampedGraph g(n);
  Time t = 0.0;
  std::vector<NodeId> endpoints;  // degree-proportional pool (global)
  // Per-community pools for the regional-affinity picks.
  const NodeId ncomm = std::max<NodeId>(1, params.communities);
  std::vector<std::vector<NodeId>> community_pool(ncomm);
  const auto record_endpoint = [&](NodeId v) {
    endpoints.push_back(v);
    if (ncomm > 1) community_pool[community_of(v, params)].push_back(v);
  };
  g.add_edge(0, 1, t);
  t += 1.0;
  record_endpoint(0);
  record_endpoint(1);

  const auto pick_pa_global = [&](NodeId self) -> NodeId {
    // (degree + 1)^beta via mixture: with beta==1 the endpoint pool is
    // exact; for other beta we apply rejection against the pool with a
    // degree^(beta-1) correction, falling back to uniform picks.
    for (std::size_t guard = 0; guard < 64; ++guard) {
      NodeId cand;
      if (rng.bernoulli(0.1)) {
        cand = static_cast<NodeId>(rng.uniform_index(self));  // uniform mix-in
      } else {
        cand = endpoints[rng.uniform_index(endpoints.size())];
      }
      if (cand == self) continue;
      if (params.pa_beta == 1.0) return cand;
      const double d = static_cast<double>(g.degree(cand)) + 1.0;
      // Normalized correction factor; degrees above ~e^6 saturate.
      const double accept = std::min(1.0, std::pow(d, params.pa_beta - 1.0) /
                                              std::pow(64.0, std::max(0.0, params.pa_beta - 1.0)));
      if (rng.bernoulli(accept)) return cand;
    }
    return static_cast<NodeId>(rng.uniform_index(self));
  };
  const auto pick_pa_target = [&](NodeId self) -> NodeId {
    // Regional affinity: draw from the home-community pool when it has
    // members and the affinity coin lands.
    if (ncomm > 1 && rng.bernoulli(params.community_affinity)) {
      const auto& pool = community_pool[community_of(self, params)];
      for (std::size_t guard = 0; guard < 16 && !pool.empty(); ++guard) {
        const NodeId cand = pool[rng.uniform_index(pool.size())];
        if (cand != self && cand < self) return cand;
      }
    }
    return pick_pa_global(self);
  };

  for (NodeId u = 2; u < n; ++u) {
    const auto links = std::max<std::uint64_t>(
        1, stats::sample_poisson(rng, params.mean_links));
    for (std::uint64_t i = 0; i < links && i < u; ++i) {
      NodeId target;
      const bool close_triangle =
          g.degree(u) > 0 && rng.bernoulli(params.triadic_closure);
      if (close_triangle) {
        // Friend-of-friend: step through a random existing friend.
        const auto friends = g.neighbors(u);
        const NodeId f = friends[rng.uniform_index(friends.size())].node;
        const auto fof = g.neighbors(f);
        target = fof[rng.uniform_index(fof.size())].node;
      } else {
        target = pick_pa_target(u);
      }
      if (target != u && g.add_edge(u, target, t)) {
        t += 1.0;
        record_endpoint(u);
        record_endpoint(target);
      }
    }
  }
  return g;
}

TimestampedGraph inject_sybil_community(const TimestampedGraph& honest,
                                        NodeId sybils, double internal_p,
                                        std::uint64_t attack_edges,
                                        stats::Rng& rng) {
  const NodeId h = honest.node_count();
  TimestampedGraph g(h + sybils);
  Time t = 0.0;
  for (NodeId u = 0; u < h; ++u) {
    for (const Neighbor& nb : honest.neighbors(u)) {
      if (u < nb.node) g.add_edge(u, nb.node, nb.created_at);
    }
  }
  // Internal ER region among the Sybils.
  for (NodeId i = 0; i < sybils; ++i) {
    for (NodeId j = i + 1; j < sybils; ++j) {
      if (rng.bernoulli(internal_p)) {
        g.add_edge(h + i, h + j, t);
        t += 1.0;
      }
    }
  }
  // Attack edges to uniform honest nodes.
  std::uint64_t added = 0, guard = 0;
  while (added < attack_edges && guard++ < 100 * attack_edges + 1000) {
    const NodeId s = h + static_cast<NodeId>(rng.uniform_index(sybils));
    const NodeId v = static_cast<NodeId>(rng.uniform_index(h));
    if (g.add_edge(s, v, t)) {
      t += 1.0;
      ++added;
    }
  }
  return g;
}

}  // namespace sybil::graph
