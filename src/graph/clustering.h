// Clustering coefficients.
//
// The paper's fourth detection feature (Fig 4) is the local clustering
// coefficient computed over a user's *first 50 friends sorted by time* —
// a deliberately streaming-friendly variant that only needs invitation
// data. Both that variant and the standard full-neighborhood coefficient
// are provided.
//
// The first-k variant runs over a NeighborView (one handle carrying the
// chronological and sorted orderings of the same snapshot): the first-k
// prefix is read straight out of the chronological row and mutual links
// are counted by sorted-adjacency intersection with galloping search,
// instead of hashing the subset and scanning full adjacency lists. The
// link count is an exact integer either way, so the old and new paths
// return bit-identical doubles (asserted by the property tests).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.h"
#include "graph/graph.h"
#include "graph/neighbor_view.h"

namespace sybil::graph {

/// Standard local clustering coefficient of u over its full neighborhood:
/// (# edges among neighbors) / (deg*(deg-1)/2). Zero for degree < 2.
double local_clustering(const CsrGraph& g, NodeId u);

/// Reusable per-call scratch for the first-k kernel: one sorted-subset
/// buffer, allocated once and recycled across every candidate of a
/// sweep (the batch entry point keeps one per chunk).
struct ClusteringScratch {
  std::vector<NodeId> subset;
};

/// The paper's metric: clustering coefficient of u's first `k` friends
/// in edge-creation order, over one NeighborView handle.
double first_k_clustering(const NeighborView& view, NodeId u,
                          std::size_t k = 50);

/// Same, with caller-owned scratch (no allocation after warm-up).
double first_k_clustering(const NeighborView& view, NodeId u, std::size_t k,
                          ClusteringScratch& scratch);

/// Batch form: coefficients for every subject, parallelized over the
/// fixed chunk partition with one scratch arena per chunk — the sorted
/// view built once per NeighborView is amortized across all candidates
/// of a sweep. out[i] corresponds to subjects[i]; bit-identical to
/// calling the scalar form per subject, for any SYBIL_THREADS.
void first_k_clustering_batch(const NeighborView& view,
                              std::span<const NodeId> subjects, std::size_t k,
                              std::span<double> out);
std::vector<double> first_k_clustering_batch(const NeighborView& view,
                                             std::span<const NodeId> subjects,
                                             std::size_t k = 50);

// ---- Deprecated two-handle forms (one release of grace) -------------
//
// These predate NeighborView and take two handles to one logical graph
// (the TimestampedGraph for chronology plus a CsrGraph for lookups).
// They forward to the same exact integer link count, so results match
// the view-based forms bit for bit. New code should construct a
// NeighborView once and use the overloads above; these forwarders will
// be removed next release.

/// Deprecated: local clustering over an explicit friend subset, links
/// looked up by scanning `g`'s rows. Zero for < 2 friends.
double clustering_of_subset(const CsrGraph& g, std::span<const NodeId> subset);

/// Deprecated: first-k clustering from a (TimestampedGraph, CsrGraph)
/// pair. Builds the prefix from `tg` and counts links in `g`.
double first_k_clustering(const TimestampedGraph& tg, const CsrGraph& g,
                          NodeId u, std::size_t k = 50);

/// Local clustering coefficient of every node, computed in parallel
/// over the fixed chunk partition (deterministic for any SYBIL_THREADS).
std::vector<double> local_clustering_all(const CsrGraph& g);

/// Mean local clustering over all nodes of degree >= 2 (0 if none).
/// Parallelized; per-chunk partial sums are combined in chunk order so
/// the result is bit-stable across thread counts.
double average_clustering(const CsrGraph& g);

/// Global transitivity: 3 * triangles / wedges (0 if no wedges).
double transitivity(const CsrGraph& g);

/// Exact triangle count via node-ordered neighbor intersection.
std::uint64_t triangle_count(const CsrGraph& g);

}  // namespace sybil::graph
