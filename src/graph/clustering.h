// Clustering coefficients.
//
// The paper's fourth detection feature (Fig 4) is the local clustering
// coefficient computed over a user's *first 50 friends sorted by time* —
// a deliberately streaming-friendly variant that only needs invitation
// data. Both that variant and the standard full-neighborhood coefficient
// are provided.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.h"
#include "graph/graph.h"

namespace sybil::graph {

/// Standard local clustering coefficient of u over its full neighborhood:
/// (# edges among neighbors) / (deg*(deg-1)/2). Zero for degree < 2.
double local_clustering(const CsrGraph& g, NodeId u);

/// Local clustering over an explicit friend subset (e.g. the first k
/// friends by time). Links are looked up in `g`. Zero for < 2 friends.
double clustering_of_subset(const CsrGraph& g, std::span<const NodeId> subset);

/// The paper's metric: clustering coefficient of u's first `k` friends in
/// edge-creation order. Requires the timestamped graph (neighbor lists
/// are chronological by construction) plus a CSR snapshot for the
/// mutual-link lookups.
double first_k_clustering(const TimestampedGraph& tg, const CsrGraph& g,
                          NodeId u, std::size_t k = 50);

/// Local clustering coefficient of every node, computed in parallel
/// over the fixed chunk partition (deterministic for any SYBIL_THREADS).
std::vector<double> local_clustering_all(const CsrGraph& g);

/// Mean local clustering over all nodes of degree >= 2 (0 if none).
/// Parallelized; per-chunk partial sums are combined in chunk order so
/// the result is bit-stable across thread counts.
double average_clustering(const CsrGraph& g);

/// Global transitivity: 3 * triangles / wedges (0 if no wedges).
double transitivity(const CsrGraph& g);

/// Exact triangle count via node-ordered neighbor intersection.
std::uint64_t triangle_count(const CsrGraph& g);

}  // namespace sybil::graph
