// Mixing-time diagnostics.
//
// Every community-based Sybil defense rests on "the honest region is
// fast mixing, the Sybil region escapes slowly". These tools measure
// both halves directly: the spectral gap of the lazy random walk (fast
// mixing ⇔ gap bounded away from 0) and the Monte-Carlo escape
// probability of walks started inside a candidate Sybil set (the
// quantity a small attack-edge cut keeps small — and wild Sybil
// components do not).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.h"
#include "stats/rng.h"

namespace sybil::graph {

/// Estimates the second-largest eigenvalue λ₂ of the lazy random-walk
/// matrix P = (I + D⁻¹A)/2 by power iteration deflated against the
/// stationary distribution. Returns λ₂ ∈ [0, 1); the spectral gap is
/// 1 − λ₂ and the relaxation time 1/(1 − λ₂).
/// Precondition: connected graph with at least one edge (callers should
/// pass the giant component).
double lazy_walk_lambda2(const CsrGraph& g, std::size_t iterations = 100,
                         std::uint64_t seed = 1);

/// Monte-Carlo probability that a `walk_length`-step random walk started
/// at a uniform member of `members` ends outside the set.
double escape_probability(const CsrGraph& g,
                          const std::vector<NodeId>& members,
                          std::size_t walk_length, std::size_t walks,
                          stats::Rng& rng);

}  // namespace sybil::graph
