// Versioned binary container: the on-disk envelope every snapshot in
// this tree shares (graph snapshots, ML dataset snapshots, simulator
// checkpoints, bench scenarios).
//
// Layout (all integers little-endian on the writing machine; the header
// carries an endianness tag so a foreign-endian file is rejected rather
// than misread — see docs/FORMATS.md for the byte-level spec):
//
//   header   32 B   magic "SYBS", endian tag, header size, format
//                   version, payload kind, section count, table CRC32,
//                   total file size
//   table    24 B   per section: id, payload CRC32, offset, length
//   payloads        8-byte aligned, zero padding between
//
// Integrity: the table CRC covers the section table; every payload has
// its own CRC32 checked on first access. Atomicity: ContainerWriter
// writes to "<path>.tmp" and renames over the target, so a crash mid-
// write never leaves a half-written file under the final name.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "io/error.h"
#include "io/mmap_file.h"
#include "io/vfs.h"

namespace sybil::io {

/// What a container file holds. A loader states what it expects and the
/// reader rejects anything else with kWrongPayload.
enum class PayloadKind : std::uint32_t {
  kTimestampedGraph = 1,
  kCsrGraph = 2,
  kDataset = 3,
  kSimulatorCheckpoint = 4,
  kDefenseScenario = 5,
  kServiceCheckpoint = 6,
};

/// Durability policy of ContainerWriter::commit. The temp+rename dance
/// alone survives a *process* crash; surviving a *machine* crash also
/// needs the file and its parent directory fsync'd before rename is
/// trusted (an unsynced rename can vanish on power loss).
enum class SyncMode {
  /// Honor the SYBIL_IO_FSYNC environment knob (default: sync). The
  /// posture for ordinary snapshots: durable unless an operator or a
  /// bench harness opts out for throughput.
  kEnv,
  /// Always fsync file + parent directory regardless of the knob.
  kAlways,
  /// Never fsync (temp files a bench discards; still atomic vs process
  /// crash via temp+rename).
  kNever,
};

/// The SYBIL_IO_FSYNC knob, read per call like SYBIL_IO_MMAP: unset,
/// "1" or "on" → true; "0" or "off" → false.
bool fsync_enabled() noexcept;

/// fsyncs an already-renamed path's parent directory so the rename
/// itself is durable. Returns false on failure (non-fatal for readers;
/// commit() turns it into kWriteFailed). No-op on non-POSIX builds.
bool fsync_parent_dir(const std::string& path) noexcept;

/// Newest container revision this build writes and the fence readers
/// enforce: version <= kFormatVersion loads, anything newer is rejected
/// with kUnsupportedVersion (forward compatibility is explicitly not
/// promised; see docs/FORMATS.md §Versioning).
inline constexpr std::uint32_t kFormatVersion = 1;

/// Accumulates named sections in memory, then commits them to disk in
/// one atomic publish (temp file + fsync + rename).
class ContainerWriter {
 public:
  explicit ContainerWriter(PayloadKind kind) : kind_(kind) {}

  /// Adds a section; ids must be unique within the file.
  void add_section(std::uint32_t id, std::vector<std::byte> payload);

  /// Typed convenience: copies `values` into a new section.
  template <typename T>
  void add_pod_section(std::uint32_t id, std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes(values.size_bytes());
    if (!bytes.empty()) {
      std::memcpy(bytes.data(), values.data(), values.size_bytes());
    }
    add_section(id, std::move(bytes));
  }

  /// Serializes header + table + payloads and atomically replaces
  /// `path`. All I/O goes through `vfs` (null → default_vfs()), so
  /// fault-injection tests can fail any individual write/fsync/rename.
  /// Throws io::VfsError (a SnapshotError; kWriteFailed for write-path
  /// failures, kOpenFailed when the temp file cannot be created); the
  /// temp file is removed, the target is left untouched. `sync` decides
  /// whether the image and the parent directory are fsync'd before the
  /// commit is reported durable (see SyncMode).
  void commit(const std::string& path, SyncMode sync = SyncMode::kEnv,
              Vfs* vfs = nullptr) const;

  /// In-memory serialization (what commit() writes) — for tests and
  /// corruption-injection tooling.
  std::vector<std::byte> serialize() const;

 private:
  struct Section {
    std::uint32_t id;
    std::vector<std::byte> payload;
  };
  PayloadKind kind_;
  std::vector<Section> sections_;
};

/// Validating reader over a mapped (or read) container file. Sections
/// are exposed as spans into the mapping — zero-copy for mmap'd files.
class ContainerReader {
 public:
  /// Opens and fully validates the envelope: magic, endianness, header
  /// size, version fence, payload kind, declared file size (truncation),
  /// table CRC, section bounds/alignment/overlap, and each section's
  /// payload CRC. Throws the matching SnapshotError on the first defect;
  /// a reader that constructs successfully holds a structurally sound
  /// file.
  ContainerReader(const std::string& path, PayloadKind expected,
                  bool prefer_mmap = true);

  /// Validates an already-loaded image (tests inject corruption here).
  ContainerReader(std::vector<std::byte> image, PayloadKind expected);

  std::uint32_t format_version() const noexcept { return version_; }
  bool mapped() const noexcept { return file_ && file_->mapped(); }

  bool has_section(std::uint32_t id) const noexcept;

  /// Section payload bytes; throws kMalformedSection if absent.
  std::span<const std::byte> section(std::uint32_t id) const;

  /// Typed view of a section. Length must divide sizeof(T) exactly and
  /// the payload must be suitably aligned (the writer 8-byte aligns
  /// every payload, which covers all types used by the formats).
  template <typename T>
  std::span<const T> pod_section(std::uint32_t id) const {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto bytes = section(id);
    if (bytes.size() % sizeof(T) != 0) {
      throw SnapshotError(SnapshotErrorCode::kMalformedSection,
                          "section " + std::to_string(id) + " length " +
                              std::to_string(bytes.size()) +
                              " not a multiple of element size");
    }
    if (reinterpret_cast<std::uintptr_t>(bytes.data()) % alignof(T) != 0) {
      throw SnapshotError(SnapshotErrorCode::kMalformedSection,
                          "section " + std::to_string(id) + " misaligned");
    }
    return {reinterpret_cast<const T*>(bytes.data()),
            bytes.size() / sizeof(T)};
  }

  /// Keeps the underlying mapping alive for zero-copy consumers that
  /// outlive the reader (e.g. a CsrGraph viewing mapped sections).
  std::shared_ptr<const void> backing() const noexcept { return file_; }

 private:
  void validate(PayloadKind expected);
  std::span<const std::byte> bytes() const noexcept;

  std::shared_ptr<const MappedFile> file_;  // null when image-backed
  std::vector<std::byte> image_;
  std::uint32_t version_ = 0;
  struct Entry {
    std::uint32_t id;
    std::uint64_t offset;
    std::uint64_t length;
  };
  std::vector<Entry> entries_;
};

/// Bounds-checked sequential decoder for record-structured sections
/// (accounts, ledgers, pending requests...). Overruns throw
/// kMalformedSection instead of reading out of bounds.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  template <typename T>
  T read() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (bytes_.size() - at_ < sizeof(T)) {
      throw SnapshotError(SnapshotErrorCode::kMalformedSection,
                          "record section shorter than its declared count");
    }
    T value;
    std::memcpy(&value, bytes_.data() + at_, sizeof(T));
    at_ += sizeof(T);
    return value;
  }

  bool exhausted() const noexcept { return at_ == bytes_.size(); }

 private:
  std::span<const std::byte> bytes_;
  std::size_t at_ = 0;
};

/// Append-only encoder matching ByteReader.
class ByteWriter {
 public:
  template <typename T>
  void write(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::byte*>(&value);
    bytes_.insert(bytes_.end(), p, p + sizeof(T));
  }

  std::vector<std::byte> take() && { return std::move(bytes_); }

 private:
  std::vector<std::byte> bytes_;
};

}  // namespace sybil::io
