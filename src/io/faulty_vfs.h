// Deterministic fault-injecting Vfs for storage-robustness tests and
// chaos scenarios ([disk] manifest section, docs/FORMATS.md §9).
//
// Fault model:
//   - Byte budget (ENOSPC): writes succeed until a cumulative budget of
//     bytes is exhausted; the crossing write persists the allowed
//     prefix, then throws kNoSpace. Stays exhausted until reconfigured.
//   - Op window (EIO/ENOSPC/short write): mutating operations numbered
//     from 0 — open-for-write, write (per call), fsync, truncate,
//     rename, sync_parent_dir; ops in [fail_from, fail_from+fail_count)
//     throw `fail_kind`. kShortWrite persists a seeded prefix first.
//   - Power loss: at a chosen fsync ordinal (cut_at_fsync) or op
//     ordinal (cut_at_op) the "machine" dies: for every tracked
//     write-opened file, bytes written since its last successful fsync
//     are truncated away except a seeded prefix, the last surviving
//     unsynced byte may be bit-flipped (mirroring faults::tear_file_tail),
//     and renames not yet pinned by a directory fsync are undone when
//     the target did not pre-exist. All subsequent ops silently no-op
//     ("dead" mode) until reboot().
//
// Determinism: same seed + same op sequence → same faults, byte for
// byte. `remove` is never injected (it is the cleanup arm of failure
// paths).
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "io/vfs.h"

namespace sybil::io {

struct FaultConfig {
  static constexpr std::uint64_t kNever = ~0ull;

  /// Cumulative bytes writable before ENOSPC; kNever = unlimited.
  /// configure() resets the used count.
  std::uint64_t byte_budget = kNever;

  /// Mutating-op window throwing `fail_kind`: [fail_from, fail_from +
  /// fail_count). fail_from counts ops since construction/configure.
  std::uint64_t fail_from = kNever;
  std::uint64_t fail_count = 0;
  VfsFaultKind fail_kind = VfsFaultKind::kIoError;

  /// Power cut at the Nth fsync (file or directory), counted since
  /// construction; the cut lands *before* the fsync makes anything
  /// durable, and the fsync throws kPowerLoss.
  std::uint64_t cut_at_fsync = kNever;

  /// Power cut at the Nth mutating op (before the op takes effect).
  std::uint64_t cut_at_op = kNever;

  /// Seed for torn-tail decisions (kept-prefix length, bit flip).
  std::uint64_t seed = 0;
};

class FaultyVfs final : public Vfs {
 public:
  explicit FaultyVfs(Vfs* inner = nullptr)
      : inner_(inner != nullptr ? inner : &real_vfs()) {}

  /// Replaces the fault plan; resets byte-budget usage, keeps op/fsync
  /// counters and power tracking (counters describe the history of the
  /// device, not of one plan).
  void configure(const FaultConfig& config);

  /// Clears all pending faults (heals the disk). Power tracking and
  /// counters are kept; a dead device stays dead until reboot().
  void clear_faults();

  /// Declares everything written so far durable — tracked files become
  /// fully synced and pending renames are pinned — as if the device had
  /// quiesced (write cache flushed, directory metadata on media) before
  /// a fault plan begins. The chaos orchestrator settles a shard's vfs
  /// when arming a [disk] window so a power cut tears only state
  /// written *inside* the window, not the whole preceding run (which,
  /// under SYBIL_IO_FSYNC=0, never issued a single barrier).
  void settle();

  /// Simulates the power cut immediately (as opposed to arming it via
  /// cut_at_fsync/cut_at_op). Idempotent while dead.
  void cut_power();

  /// Brings a dead device back: ops pass through again. Fault plan is
  /// cleared; tracking restarts from the on-disk state.
  void reboot();

  bool dead() const;

  std::uint64_t ops() const;
  std::uint64_t fsyncs() const;
  std::uint64_t faults_injected() const;

  // Vfs interface.
  std::unique_ptr<VfsFile> open(const std::string& path,
                                VfsMode mode) override;
  void rename(const std::string& from, const std::string& to) override;
  bool remove(const std::string& path) noexcept override;
  void truncate(const std::string& path, std::uint64_t size) override;
  void sync_parent_dir(const std::string& path) override;

 private:
  friend class FaultyVfsFile;

  struct Tracked {
    std::uint64_t synced_size = 0;   // durable as of last fsync
    std::uint64_t written_size = 0;  // current on-disk size
  };
  struct PendingRename {
    std::string from;
    std::string to;
    bool target_existed;
  };

  // All helpers expect mutex_ held.
  void account_op_locked(const std::string& what);
  void charge_bytes_locked(const std::string& path, std::uint64_t n);
  void note_fsync_locked();
  void cut_power_locked();
  std::uint64_t next_rand_locked();

  Vfs* inner_;
  mutable std::mutex mutex_;
  FaultConfig config_{};
  std::uint64_t budget_used_ = 0;
  std::uint64_t op_count_ = 0;
  std::uint64_t fsync_count_ = 0;
  std::uint64_t faults_injected_ = 0;
  std::uint64_t rng_state_ = 0x9e3779b97f4a7c15ull;
  bool dead_ = false;
  std::map<std::string, Tracked> tracked_;
  std::vector<PendingRename> pending_renames_;
};

}  // namespace sybil::io
