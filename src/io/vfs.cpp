#include "io/vfs.h"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "core/metrics/instrument.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>
#define SYBIL_VFS_POSIX 1
#endif

namespace sybil::io {

const char* to_string(VfsFaultKind kind) noexcept {
  switch (kind) {
    case VfsFaultKind::kNoSpace:
      return "enospc";
    case VfsFaultKind::kIoError:
      return "eio";
    case VfsFaultKind::kShortWrite:
      return "short-write";
    case VfsFaultKind::kPowerLoss:
      return "power-loss";
  }
  return "unknown";
}

namespace {

VfsFaultKind kind_from_errno(int err) noexcept {
#if defined(ENOSPC)
  if (err == ENOSPC) return VfsFaultKind::kNoSpace;
#endif
  (void)err;
  return VfsFaultKind::kIoError;
}

#ifdef SYBIL_VFS_POSIX

class PosixVfsFile final : public VfsFile {
 public:
  PosixVfsFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}

  ~PosixVfsFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  std::size_t read(void* buf, std::size_t n) override {
    auto* at = static_cast<unsigned char*>(buf);
    std::size_t total = 0;
    while (total < n) {
      const ::ssize_t got = ::read(fd_, at + total, n - total);
      if (got == 0) break;  // EOF
      if (got < 0) {
        if (errno == EINTR) continue;
        throw VfsError(kind_from_errno(errno),
                       SnapshotErrorCode::kTruncated,
                       "read failed: " + path_);
      }
      total += static_cast<std::size_t>(got);
    }
    SYBIL_METRIC_COUNT("io.vfs.reads", 1);
    return total;
  }

  void write(const void* buf, std::size_t n) override {
    const auto* at = static_cast<const unsigned char*>(buf);
    std::size_t total = 0;
    while (total < n) {
      const ::ssize_t put = ::write(fd_, at + total, n - total);
      if (put < 0) {
        if (errno == EINTR) continue;
        throw VfsError(kind_from_errno(errno), "write failed: " + path_,
                       total);
      }
      total += static_cast<std::size_t>(put);
    }
    SYBIL_METRIC_COUNT("io.vfs.writes", 1);
    SYBIL_METRIC_COUNT("io.vfs.bytes_written", n);
  }

  void fsync() override {
    if (::fsync(fd_) != 0) {
      throw VfsError(kind_from_errno(errno), "fsync failed: " + path_);
    }
    SYBIL_METRIC_COUNT("io.vfs.fsyncs", 1);
  }

  void close() override {
    if (fd_ < 0) return;
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) {
      throw VfsError(kind_from_errno(errno), "close failed: " + path_);
    }
  }

 private:
  int fd_;
  std::string path_;
};

#else  // !SYBIL_VFS_POSIX — stdio fallback

class StdioVfsFile final : public VfsFile {
 public:
  StdioVfsFile(std::FILE* f, std::string path)
      : file_(f), path_(std::move(path)) {}

  ~StdioVfsFile() override {
    if (file_ != nullptr) std::fclose(file_);
  }

  std::size_t read(void* buf, std::size_t n) override {
    const std::size_t got = std::fread(buf, 1, n, file_);
    if (got < n && std::ferror(file_)) {
      throw VfsError(VfsFaultKind::kIoError, SnapshotErrorCode::kTruncated,
                     "read failed: " + path_);
    }
    SYBIL_METRIC_COUNT("io.vfs.reads", 1);
    return got;
  }

  void write(const void* buf, std::size_t n) override {
    const std::size_t put = std::fwrite(buf, 1, n, file_);
    if (put != n) {
      throw VfsError(VfsFaultKind::kIoError, "write failed: " + path_, put);
    }
    SYBIL_METRIC_COUNT("io.vfs.writes", 1);
    SYBIL_METRIC_COUNT("io.vfs.bytes_written", n);
  }

  void fsync() override {
    if (std::fflush(file_) != 0) {
      throw VfsError(VfsFaultKind::kIoError, "flush failed: " + path_);
    }
    SYBIL_METRIC_COUNT("io.vfs.fsyncs", 1);
  }

  void close() override {
    if (file_ == nullptr) return;
    std::FILE* f = file_;
    file_ = nullptr;
    if (std::fclose(f) != 0) {
      throw VfsError(VfsFaultKind::kIoError, "close failed: " + path_);
    }
  }

 private:
  std::FILE* file_;
  std::string path_;
};

#endif  // SYBIL_VFS_POSIX

class RealVfs final : public Vfs {
 public:
  std::unique_ptr<VfsFile> open(const std::string& path,
                                VfsMode mode) override {
    SYBIL_METRIC_COUNT("io.vfs.opens", 1);
#ifdef SYBIL_VFS_POSIX
    int flags = 0;
    switch (mode) {
      case VfsMode::kRead:
        flags = O_RDONLY;
        break;
      case VfsMode::kTruncate:
        flags = O_WRONLY | O_CREAT | O_TRUNC;
        break;
      case VfsMode::kAppend:
        flags = O_WRONLY | O_CREAT | O_APPEND;
        break;
    }
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) {
      throw VfsError(kind_from_errno(errno), SnapshotErrorCode::kOpenFailed,
                     "cannot open " + path);
    }
    return std::make_unique<PosixVfsFile>(fd, path);
#else
    const char* m = mode == VfsMode::kRead
                        ? "rb"
                        : (mode == VfsMode::kTruncate ? "wb" : "ab");
    std::FILE* f = std::fopen(path.c_str(), m);
    if (f == nullptr) {
      throw VfsError(VfsFaultKind::kIoError, SnapshotErrorCode::kOpenFailed,
                     "cannot open " + path);
    }
    return std::make_unique<StdioVfsFile>(f, path);
#endif
  }

  void rename(const std::string& from, const std::string& to) override {
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      throw VfsError(kind_from_errno(errno),
                     "rename failed: " + from + " -> " + to);
    }
    SYBIL_METRIC_COUNT("io.vfs.renames", 1);
  }

  bool remove(const std::string& path) noexcept override {
    return std::remove(path.c_str()) == 0;
  }

  void truncate(const std::string& path, std::uint64_t size) override {
#ifdef SYBIL_VFS_POSIX
    if (::truncate(path.c_str(), static_cast<::off_t>(size)) != 0) {
      throw VfsError(kind_from_errno(errno), "truncate failed: " + path);
    }
#else
    // No portable truncate-to-size in stdio; rewrite the prefix.
    std::FILE* in = std::fopen(path.c_str(), "rb");
    if (in == nullptr) {
      throw VfsError(VfsFaultKind::kIoError, "truncate failed: " + path);
    }
    std::vector<unsigned char> keep(static_cast<std::size_t>(size));
    const std::size_t got = std::fread(keep.data(), 1, keep.size(), in);
    std::fclose(in);
    std::FILE* out = std::fopen(path.c_str(), "wb");
    if (out == nullptr) {
      throw VfsError(VfsFaultKind::kIoError, "truncate failed: " + path);
    }
    const bool ok = got == 0 || std::fwrite(keep.data(), 1, got, out) == got;
    if (std::fclose(out) != 0 || !ok || got != keep.size()) {
      throw VfsError(VfsFaultKind::kIoError, "truncate failed: " + path);
    }
#endif
  }

  void sync_parent_dir(const std::string& path) override {
#ifdef SYBIL_VFS_POSIX
    const std::size_t slash = path.find_last_of('/');
    const std::string dir = slash == std::string::npos
                                ? std::string(".")
                                : path.substr(0, slash == 0 ? 1 : slash);
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) {
      throw VfsError(kind_from_errno(errno),
                     "directory open failed for " + path);
    }
    const bool ok = ::fsync(fd) == 0;
    ::close(fd);
    if (!ok) {
      throw VfsError(kind_from_errno(errno),
                     "directory fsync failed for " + path);
    }
    SYBIL_METRIC_COUNT("io.vfs.fsyncs", 1);
#else
    (void)path;
#endif
  }
};

std::atomic<Vfs*>& default_slot() noexcept {
  static std::atomic<Vfs*> slot{nullptr};
  return slot;
}

}  // namespace

Vfs& real_vfs() {
  static RealVfs vfs;
  return vfs;
}

Vfs* default_vfs() noexcept {
  Vfs* v = default_slot().load(std::memory_order_acquire);
  return v != nullptr ? v : &real_vfs();
}

Vfs* set_default_vfs(Vfs* vfs) noexcept {
  Vfs* prev = default_slot().exchange(vfs, std::memory_order_acq_rel);
  return prev != nullptr ? prev : &real_vfs();
}

BufferedVfsFile::~BufferedVfsFile() {
  if (closed_) return;
  try {
    flush();
  } catch (...) {
    // Destructor is best-effort; retained bytes are lost with the object.
  }
  try {
    inner_->close();
  } catch (...) {
  }
}

void BufferedVfsFile::write(const void* buf, std::size_t n) {
  const auto* at = static_cast<const unsigned char*>(buf);
  buffer_.insert(buffer_.end(), at, at + n);
}

void BufferedVfsFile::flush() {
  if (buffer_.empty()) return;
  try {
    inner_->write(buffer_.data(), buffer_.size());
  } catch (const VfsError& err) {
    // Retention: drop exactly the prefix that landed; the suffix stays
    // buffered so the next flush resumes where the fault struck.
    const std::size_t done = err.bytes_written() <= buffer_.size()
                                 ? err.bytes_written()
                                 : buffer_.size();
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(done));
    throw;
  }
  buffer_.clear();
}

void BufferedVfsFile::fsync() {
  flush();
  inner_->fsync();
}

void BufferedVfsFile::close() {
  if (closed_) return;
  flush();
  inner_->close();
  closed_ = true;
}

}  // namespace sybil::io
