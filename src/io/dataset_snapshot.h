// Binary ML dataset snapshots (docs/FORMATS.md §Dataset).
//
// Stores an ml::Dataset — the row-major feature matrix plus ±1 labels —
// losslessly: doubles are written bit-exact, so a reloaded dataset
// produces byte-identical classifier training runs, unlike the CSV
// path (ml/dataset_io.h) which round-trips through decimal text.
#pragma once

#include <string>

#include "ml/dataset.h"

namespace sybil::io {

/// Atomically writes `path` (temp file + rename).
void save_dataset_snapshot(const ml::Dataset& data, const std::string& path);

/// Rejects corrupt/truncated/mislabeled files with typed SnapshotErrors.
ml::Dataset load_dataset_snapshot(const std::string& path);

}  // namespace sybil::io
