// Injectable storage abstraction (in the spirit of SQLite's test VFS):
// every durable path in this tree — WAL segments, checkpoint containers,
// graph/dataset snapshots — performs its file I/O through a `Vfs` so
// tests can substitute a deterministic fault-injecting implementation
// (io/faulty_vfs.h) and prove that ENOSPC, EIO, short writes, and
// power loss at any point leave every state root recoverable.
//
// Contracts:
//   - VfsFile::write is all-or-throw: on VfsError, `bytes_written()`
//     reports how many bytes of *this call* reached the file, so a
//     caller holding the buffer can retry exactly the unwritten suffix.
//   - VfsFile::close surfaces close-time write-back failures as typed
//     errors instead of swallowing them (the classic fclose bug).
//   - Vfs::remove is best-effort and never fault-injected: it is the
//     cleanup arm of failure paths and must not itself fail them.
//
// The process-wide default (`default_vfs`) is the real passthrough
// unless a test installs another via `set_default_vfs`/`ScopedDefaultVfs`;
// durable paths also accept an explicit `Vfs*` for per-shard injection.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/error.h"

namespace sybil::io {

/// The storage failure taxonomy FaultyVfs can inject and real backends
/// report (mapped from errno: ENOSPC → kNoSpace, anything else → kIoError).
enum class VfsFaultKind {
  kNoSpace,     // disk full (ENOSPC / budget exhausted)
  kIoError,     // generic I/O failure (EIO, bad sector, ...)
  kShortWrite,  // a write persisted a strict prefix, then failed
  kPowerLoss,   // simulated machine power cut at an fsync barrier
};

const char* to_string(VfsFaultKind kind) noexcept;

/// Typed storage error. Derives from SnapshotError so existing catch
/// sites (and tests pinning SnapshotErrorCode) keep working, while the
/// service layer can distinguish storage faults and their kind.
class VfsError : public SnapshotError {
 public:
  VfsError(VfsFaultKind kind, SnapshotErrorCode code,
           const std::string& detail, std::size_t bytes_written = 0)
      : SnapshotError(code, std::string("storage [") + to_string(kind) +
                                "]: " + detail),
        kind_(kind),
        bytes_written_(bytes_written) {}

  VfsError(VfsFaultKind kind, const std::string& detail,
           std::size_t bytes_written = 0)
      : VfsError(kind, SnapshotErrorCode::kWriteFailed, detail,
                 bytes_written) {}

  VfsFaultKind kind() const noexcept { return kind_; }

  /// Bytes of the failing write() call that reached the file before the
  /// error (0 for non-write operations). The retryable suffix starts here.
  std::size_t bytes_written() const noexcept { return bytes_written_; }

 private:
  VfsFaultKind kind_;
  std::size_t bytes_written_;
};

enum class VfsMode {
  kRead,      // existing file, read-only
  kTruncate,  // create or truncate, write
  kAppend,    // create or append, write
};

/// An open file handle. All methods throw VfsError on failure except
/// where noted; the destructor best-effort closes without throwing.
class VfsFile {
 public:
  virtual ~VfsFile() = default;

  /// Reads up to `n` bytes; returns the count actually read. A short
  /// read only happens at end-of-file; mid-file errors throw.
  virtual std::size_t read(void* buf, std::size_t n) = 0;

  /// Writes all `n` bytes or throws. On VfsError, err.bytes_written()
  /// is the number of bytes of this call that reached the file.
  virtual void write(const void* buf, std::size_t n) = 0;

  /// Durability barrier. Throws VfsError on failure.
  virtual void fsync() = 0;

  /// Flushes and closes, surfacing close-time write failures as
  /// VfsError. Idempotent: a second close is a no-op.
  virtual void close() = 0;
};

/// The storage interface durable paths program against.
class Vfs {
 public:
  virtual ~Vfs() = default;

  /// Opens `path` in `mode`. Open failures throw VfsError carrying
  /// SnapshotErrorCode::kOpenFailed.
  virtual std::unique_ptr<VfsFile> open(const std::string& path,
                                        VfsMode mode) = 0;

  /// Atomically renames `from` over `to`. Throws VfsError on failure.
  virtual void rename(const std::string& from, const std::string& to) = 0;

  /// Best-effort unlink; never fault-injected, never throws. Returns
  /// whether the file was removed.
  virtual bool remove(const std::string& path) noexcept = 0;

  /// Truncates `path` to `size` bytes. Throws VfsError on failure.
  virtual void truncate(const std::string& path, std::uint64_t size) = 0;

  /// fsyncs the parent directory of `path` so a preceding rename/create
  /// is durable. Throws VfsError on failure.
  virtual void sync_parent_dir(const std::string& path) = 0;
};

/// The real passthrough implementation (POSIX fds where available,
/// stdio otherwise). fsync/sync_parent_dir issue the real syscalls
/// unconditionally — policy (the SYBIL_IO_FSYNC knob, WalFsync, a
/// SyncMode) lives at the call sites, exactly as before the VFS
/// existed, so the knob's committed semantics are unchanged.
Vfs& real_vfs();

/// Process-wide default used when a durable path is not handed an
/// explicit Vfs. Never null (falls back to real_vfs()).
Vfs* default_vfs() noexcept;

/// Installs `vfs` as the default (null restores the real one). Returns
/// the previous default. Not thread-safe against concurrent I/O —
/// intended for test setup.
Vfs* set_default_vfs(Vfs* vfs) noexcept;

/// RAII default-vfs swap for tests.
class ScopedDefaultVfs {
 public:
  explicit ScopedDefaultVfs(Vfs* vfs) : prev_(set_default_vfs(vfs)) {}
  ~ScopedDefaultVfs() { set_default_vfs(prev_); }
  ScopedDefaultVfs(const ScopedDefaultVfs&) = delete;
  ScopedDefaultVfs& operator=(const ScopedDefaultVfs&) = delete;

 private:
  Vfs* prev_;
};

/// Write-buffering wrapper with *retention*: write() appends to an
/// in-memory buffer and never fails; flush() pushes the whole buffer to
/// the inner file and, on VfsError, erases exactly the prefix that
/// reached the file before rethrowing — the unwritten suffix stays
/// buffered, so no record is ever torn by the buffered path and a later
/// retry resumes precisely where the fault struck. This is the degraded-
/// tier buffer of the storage-degraded service (docs/ROBUSTNESS.md).
class BufferedVfsFile {
 public:
  explicit BufferedVfsFile(std::unique_ptr<VfsFile> inner)
      : inner_(std::move(inner)) {}
  ~BufferedVfsFile();
  BufferedVfsFile(const BufferedVfsFile&) = delete;
  BufferedVfsFile& operator=(const BufferedVfsFile&) = delete;

  /// Appends to the buffer; never fails.
  void write(const void* buf, std::size_t n);

  /// Writes the buffered bytes to the inner file. On VfsError the
  /// successfully-written prefix is dropped from the buffer and the
  /// error rethrown; the remainder is retried by the next flush.
  void flush();

  /// flush() + inner fsync.
  void fsync();

  /// flush() + inner close (throws on either failing).
  void close();

  /// Drops buffered bytes without writing them (abort paths).
  void discard() noexcept { buffer_.clear(); }

  std::size_t buffered() const noexcept { return buffer_.size(); }

 private:
  std::unique_ptr<VfsFile> inner_;
  std::vector<unsigned char> buffer_;
  bool closed_ = false;
};

}  // namespace sybil::io
