#include "io/container.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/metrics/instrument.h"
#include "io/crc32.h"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace sybil::io {
namespace {

// "SYBS" in little-endian byte order: snapshot files start 53 59 42 53.
constexpr std::uint32_t kMagic = 0x53425953u;
// Written natively; a reader on a foreign-endian machine sees 0x0201.
constexpr std::uint16_t kEndianTag = 0x0102u;
constexpr std::uint16_t kHeaderSize = 32;
constexpr std::size_t kTableEntrySize = 24;
constexpr std::size_t kAlignment = 8;

struct Header {
  std::uint32_t magic;
  std::uint16_t endian_tag;
  std::uint16_t header_size;
  std::uint32_t format_version;
  std::uint32_t payload_kind;
  std::uint32_t section_count;
  std::uint32_t table_crc;
  std::uint64_t file_size;
};
static_assert(sizeof(Header) == kHeaderSize);

constexpr std::size_t align_up(std::size_t n) noexcept {
  return (n + kAlignment - 1) & ~(kAlignment - 1);
}

}  // namespace

bool fsync_enabled() noexcept {
  const char* v = std::getenv("SYBIL_IO_FSYNC");
  if (v == nullptr) return true;  // durable by default
  return !(std::strcmp(v, "0") == 0 || std::strcmp(v, "off") == 0);
}

bool fsync_parent_dir(const std::string& path) noexcept {
#if defined(__unix__) || defined(__APPLE__)
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  if (ok) SYBIL_METRIC_COUNT("io.fsyncs", 1);
  return ok;
#else
  (void)path;
  return true;
#endif
}

void ContainerWriter::add_section(std::uint32_t id,
                                  std::vector<std::byte> payload) {
  for (const Section& s : sections_) {
    if (s.id == id) {
      throw SnapshotError(SnapshotErrorCode::kFormatViolation,
                          "duplicate section id " + std::to_string(id));
    }
  }
  sections_.push_back({id, std::move(payload)});
}

std::vector<std::byte> ContainerWriter::serialize() const {
  const std::size_t table_size = sections_.size() * kTableEntrySize;
  std::size_t offset = align_up(kHeaderSize + table_size);

  std::vector<std::byte> table(table_size);
  std::size_t cursor = 0;
  const auto put32 = [&](std::uint32_t v) {
    std::memcpy(table.data() + cursor, &v, 4);
    cursor += 4;
  };
  const auto put64 = [&](std::uint64_t v) {
    std::memcpy(table.data() + cursor, &v, 8);
    cursor += 8;
  };
  std::size_t total = offset;
  for (const Section& s : sections_) {
    put32(s.id);
    put32(crc32(s.payload));
    put64(total);
    put64(s.payload.size());
    total = align_up(total + s.payload.size());
  }

  Header header{};
  header.magic = kMagic;
  header.endian_tag = kEndianTag;
  header.header_size = kHeaderSize;
  header.format_version = kFormatVersion;
  header.payload_kind = static_cast<std::uint32_t>(kind_);
  header.section_count = static_cast<std::uint32_t>(sections_.size());
  header.table_crc = crc32(table);
  // The last section is not padded on disk; file_size reflects that.
  std::size_t file_size = offset;
  for (std::size_t i = 0; i < sections_.size(); ++i) {
    file_size = (i + 1 == sections_.size())
                    ? file_size + sections_[i].payload.size()
                    : align_up(file_size + sections_[i].payload.size());
  }
  header.file_size = file_size;

  std::vector<std::byte> out(file_size, std::byte{0});
  std::memcpy(out.data(), &header, sizeof(header));
  std::memcpy(out.data() + kHeaderSize, table.data(), table.size());
  std::size_t at = offset;
  for (const Section& s : sections_) {
    if (!s.payload.empty()) {
      std::memcpy(out.data() + at, s.payload.data(), s.payload.size());
    }
    at = align_up(at + s.payload.size());
  }
  return out;
}

void ContainerWriter::commit(const std::string& path, SyncMode sync,
                             Vfs* vfs) const {
  SYBIL_METRIC_SCOPED_TIMER(span, "io.container.commit");
  if (vfs == nullptr) vfs = default_vfs();
  const bool want_sync =
      sync == SyncMode::kAlways || (sync == SyncMode::kEnv && fsync_enabled());
  const std::vector<std::byte> image = serialize();
  const std::string tmp = path + ".tmp";
  // Write-to-temp-then-rename: the target name only ever points at a
  // complete image, so a crash mid-save cannot corrupt an existing
  // snapshot or leave a short file under the final name — under *any*
  // storage fault, which is why every step goes through the vfs: on a
  // thrown VfsError (ENOSPC, EIO, short write, power cut) the temp file
  // is best-effort removed and the target was never touched.
  // Machine-crash durability additionally requires fsync of the image
  // and, after the rename, of the parent directory (the rename itself
  // lives in directory metadata) — governed by `sync`.
  try {
    auto f = vfs->open(tmp, VfsMode::kTruncate);
    if (!image.empty()) f->write(image.data(), image.size());
    if (want_sync) {
      f->fsync();
      SYBIL_METRIC_COUNT("io.fsyncs", 1);
    }
    // close() surfaces close-time write-back failures (the classic
    // silently-swallowed fclose error) as typed VfsErrors.
    f->close();
    vfs->rename(tmp, path);
    if (want_sync) {
      vfs->sync_parent_dir(path);
      SYBIL_METRIC_COUNT("io.fsyncs", 1);
    }
  } catch (const VfsError&) {
    vfs->remove(tmp);
    throw;
  }
  SYBIL_METRIC_COUNT("io.bytes_written", image.size());
  SYBIL_METRIC_COUNT("io.snapshots_saved", 1);
}

ContainerReader::ContainerReader(const std::string& path,
                                 PayloadKind expected, bool prefer_mmap)
    : file_(MappedFile::open(path, prefer_mmap)) {
  validate(expected);
}

ContainerReader::ContainerReader(std::vector<std::byte> image,
                                 PayloadKind expected)
    : image_(std::move(image)) {
  validate(expected);
}

std::span<const std::byte> ContainerReader::bytes() const noexcept {
  return file_ ? file_->bytes() : std::span<const std::byte>(image_);
}

void ContainerReader::validate(PayloadKind expected) {
  SYBIL_METRIC_SCOPED_TIMER(span, "io.container.validate");
  const auto data = bytes();
  if (data.size() < kHeaderSize) {
    throw SnapshotError(SnapshotErrorCode::kTruncated,
                        "file shorter than header (" +
                            std::to_string(data.size()) + " bytes)");
  }
  Header header;
  std::memcpy(&header, data.data(), sizeof(header));
  if (header.magic != kMagic) {
    throw SnapshotError(SnapshotErrorCode::kBadMagic,
                        "not a sybil snapshot container");
  }
  if (header.endian_tag != kEndianTag) {
    throw SnapshotError(SnapshotErrorCode::kBadEndianness,
                        "written on an incompatible-endian machine");
  }
  if (header.header_size != kHeaderSize) {
    throw SnapshotError(SnapshotErrorCode::kMalformedSection,
                        "unexpected header size");
  }
  if (header.format_version > kFormatVersion) {
    throw SnapshotError(
        SnapshotErrorCode::kUnsupportedVersion,
        "file format v" + std::to_string(header.format_version) +
            " newer than supported v" + std::to_string(kFormatVersion));
  }
  version_ = header.format_version;
  if (header.payload_kind != static_cast<std::uint32_t>(expected)) {
    throw SnapshotError(SnapshotErrorCode::kWrongPayload,
                        "payload kind " +
                            std::to_string(header.payload_kind) +
                            ", expected " +
                            std::to_string(
                                static_cast<std::uint32_t>(expected)));
  }
  if (header.file_size != data.size()) {
    throw SnapshotError(SnapshotErrorCode::kTruncated,
                        "header declares " +
                            std::to_string(header.file_size) +
                            " bytes, file has " +
                            std::to_string(data.size()));
  }
  const std::size_t table_size =
      static_cast<std::size_t>(header.section_count) * kTableEntrySize;
  if (data.size() - kHeaderSize < table_size) {
    throw SnapshotError(SnapshotErrorCode::kTruncated,
                        "section table extends past end of file");
  }
  const auto table = data.subspan(kHeaderSize, table_size);
  if (crc32(table) != header.table_crc) {
    throw SnapshotError(SnapshotErrorCode::kChecksumMismatch,
                        "section table checksum mismatch");
  }

  entries_.reserve(header.section_count);
  std::vector<std::uint32_t> crcs(header.section_count);
  for (std::uint32_t i = 0; i < header.section_count; ++i) {
    const std::byte* at = table.data() + i * kTableEntrySize;
    Entry e;
    std::memcpy(&e.id, at, 4);
    std::memcpy(&crcs[i], at + 4, 4);
    std::memcpy(&e.offset, at + 8, 8);
    std::memcpy(&e.length, at + 16, 8);
    if (e.offset % kAlignment != 0 || e.offset > data.size() ||
        e.length > data.size() - e.offset) {
      throw SnapshotError(SnapshotErrorCode::kMalformedSection,
                          "section " + std::to_string(e.id) +
                              " out of bounds or misaligned");
    }
    for (const Entry& prev : entries_) {
      if (prev.id == e.id) {
        throw SnapshotError(SnapshotErrorCode::kMalformedSection,
                            "duplicate section id " + std::to_string(e.id));
      }
      const bool disjoint = e.offset >= prev.offset + prev.length ||
                            prev.offset >= e.offset + e.length;
      if (!disjoint) {
        throw SnapshotError(SnapshotErrorCode::kMalformedSection,
                            "overlapping sections");
      }
    }
    entries_.push_back(e);
  }
  // Verify every payload CRC up front: a reader that constructs holds a
  // fully integrity-checked file, and nothing downstream can observe a
  // bit-flipped section. For mmap'd files this is the one full pass
  // over the data (page-cache warm-up the consumer benefits from).
  for (std::uint32_t i = 0; i < header.section_count; ++i) {
    const Entry& e = entries_[i];
    if (crc32(data.subspan(e.offset, e.length)) != crcs[i]) {
      throw SnapshotError(SnapshotErrorCode::kChecksumMismatch,
                          "section " + std::to_string(e.id) +
                              " payload checksum mismatch");
    }
  }
  SYBIL_METRIC_COUNT("io.bytes_read", data.size());
  SYBIL_METRIC_COUNT("io.snapshots_loaded", 1);
}

bool ContainerReader::has_section(std::uint32_t id) const noexcept {
  return std::any_of(entries_.begin(), entries_.end(),
                     [id](const Entry& e) { return e.id == id; });
}

std::span<const std::byte> ContainerReader::section(std::uint32_t id) const {
  for (const Entry& e : entries_) {
    if (e.id == id) return bytes().subspan(e.offset, e.length);
  }
  throw SnapshotError(SnapshotErrorCode::kMalformedSection,
                      "missing section " + std::to_string(id));
}

}  // namespace sybil::io
