#include "io/faulty_vfs.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "core/metrics/instrument.h"

namespace sybil::io {
namespace {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// Flips one seeded bit in the byte at `at` — the torn-write half of the
// power-loss model, mirroring faults::tear_file_tail (which this layer
// cannot call: sybil_vfs sits below the faults library).
void flip_bit_at(const std::string& path, std::uint64_t at,
                 unsigned bit) noexcept {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) return;
  if (std::fseek(f, static_cast<long>(at), SEEK_SET) == 0) {
    const int c = std::fgetc(f);
    if (c != EOF && std::fseek(f, static_cast<long>(at), SEEK_SET) == 0) {
      std::fputc(c ^ (1 << (bit & 7)), f);
    }
  }
  std::fclose(f);
}

}  // namespace

/// File handle that consults the owning FaultyVfs on every operation.
/// `inner` is null when the device was already dead at open time.
class FaultyVfsFile final : public VfsFile {
 public:
  FaultyVfsFile(FaultyVfs* owner, std::unique_ptr<VfsFile> inner,
                std::string path, bool writable)
      : owner_(owner),
        inner_(std::move(inner)),
        path_(std::move(path)),
        writable_(writable) {}

  std::size_t read(void* buf, std::size_t n) override {
    std::lock_guard<std::mutex> lock(owner_->mutex_);
    if (owner_->dead_ || inner_ == nullptr) return 0;
    return inner_->read(buf, n);
  }

  void write(const void* buf, std::size_t n) override {
    std::lock_guard<std::mutex> lock(owner_->mutex_);
    if (owner_->dead_ || inner_ == nullptr) return;
    const FaultConfig& cfg = owner_->config_;
    const std::uint64_t op = owner_->op_count_++;
    if (op == cfg.cut_at_op) {
      owner_->cut_power_locked();
      throw VfsError(VfsFaultKind::kPowerLoss,
                     "power cut at write: " + path_);
    }
    const bool in_window =
        op >= cfg.fail_from && op - cfg.fail_from < cfg.fail_count;
    if (in_window && cfg.fail_kind != VfsFaultKind::kShortWrite) {
      ++owner_->faults_injected_;
      SYBIL_METRIC_COUNT("io.vfs.faults", 1);
      throw VfsError(cfg.fail_kind, "write failed: " + path_, 0);
    }
    // Byte budget: the crossing write persists the allowed prefix.
    std::uint64_t allowed = n;
    bool budget_hit = false;
    if (cfg.byte_budget != FaultConfig::kNever) {
      const std::uint64_t remaining =
          owner_->budget_used_ >= cfg.byte_budget
              ? 0
              : cfg.byte_budget - owner_->budget_used_;
      if (remaining < n) {
        allowed = remaining;
        budget_hit = true;
      }
    }
    std::uint64_t prefix = allowed;
    const bool short_hit =
        in_window && cfg.fail_kind == VfsFaultKind::kShortWrite;
    if (short_hit && allowed > 0) {
      prefix = owner_->next_rand_locked() % allowed;  // strict prefix
    }
    if (prefix > 0) {
      inner_->write(buf, static_cast<std::size_t>(prefix));
      owner_->budget_used_ += prefix;
      if (writable_) {
        owner_->tracked_[path_].written_size += prefix;
      }
    }
    if (short_hit) {
      ++owner_->faults_injected_;
      SYBIL_METRIC_COUNT("io.vfs.faults", 1);
      throw VfsError(VfsFaultKind::kShortWrite, "short write: " + path_,
                     static_cast<std::size_t>(prefix));
    }
    if (budget_hit) {
      owner_->budget_used_ = cfg.byte_budget;
      ++owner_->faults_injected_;
      SYBIL_METRIC_COUNT("io.vfs.faults", 1);
      throw VfsError(VfsFaultKind::kNoSpace, "disk full: " + path_,
                     static_cast<std::size_t>(prefix));
    }
  }

  void fsync() override {
    std::lock_guard<std::mutex> lock(owner_->mutex_);
    if (owner_->dead_ || inner_ == nullptr) return;
    owner_->account_op_locked("fsync " + path_);
    owner_->note_fsync_locked();
    inner_->fsync();
    if (writable_) {
      auto& t = owner_->tracked_[path_];
      t.synced_size = t.written_size;
    }
  }

  void close() override {
    std::lock_guard<std::mutex> lock(owner_->mutex_);
    if (closed_) return;
    closed_ = true;
    if (owner_->dead_ || inner_ == nullptr) return;
    inner_->close();
  }

 private:
  FaultyVfs* owner_;
  std::unique_ptr<VfsFile> inner_;
  std::string path_;
  bool writable_;
  bool closed_ = false;
};

void FaultyVfs::configure(const FaultConfig& config) {
  std::lock_guard<std::mutex> lock(mutex_);
  config_ = config;
  budget_used_ = 0;
  rng_state_ = config.seed;
}

void FaultyVfs::clear_faults() {
  std::lock_guard<std::mutex> lock(mutex_);
  config_ = FaultConfig{};
  budget_used_ = 0;
}

void FaultyVfs::settle() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [path, t] : tracked_) t.synced_size = t.written_size;
  pending_renames_.clear();
}

void FaultyVfs::cut_power() {
  std::lock_guard<std::mutex> lock(mutex_);
  cut_power_locked();
}

void FaultyVfs::reboot() {
  std::lock_guard<std::mutex> lock(mutex_);
  dead_ = false;
  config_ = FaultConfig{};
  budget_used_ = 0;
  // Tracking restarts from the on-disk state: whatever survived the cut
  // is the new durable baseline.
  tracked_.clear();
  pending_renames_.clear();
}

bool FaultyVfs::dead() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dead_;
}

std::uint64_t FaultyVfs::ops() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return op_count_;
}

std::uint64_t FaultyVfs::fsyncs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fsync_count_;
}

std::uint64_t FaultyVfs::faults_injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return faults_injected_;
}

std::unique_ptr<VfsFile> FaultyVfs::open(const std::string& path,
                                         VfsMode mode) {
  std::lock_guard<std::mutex> lock(mutex_);
  const bool writable = mode != VfsMode::kRead;
  if (dead_) {
    return std::make_unique<FaultyVfsFile>(this, nullptr, path, writable);
  }
  if (writable) {
    // Open-for-write is a mutating op; open failures carry kOpenFailed.
    const FaultConfig& cfg = config_;
    const std::uint64_t op = op_count_++;
    if (op == cfg.cut_at_op) {
      cut_power_locked();
      throw VfsError(VfsFaultKind::kPowerLoss,
                     SnapshotErrorCode::kOpenFailed,
                     "power cut at open: " + path);
    }
    if (op >= cfg.fail_from && op - cfg.fail_from < cfg.fail_count) {
      const VfsFaultKind kind =
          cfg.fail_kind == VfsFaultKind::kShortWrite ? VfsFaultKind::kIoError
                                                     : cfg.fail_kind;
      ++faults_injected_;
      SYBIL_METRIC_COUNT("io.vfs.faults", 1);
      throw VfsError(kind, SnapshotErrorCode::kOpenFailed,
                     "cannot open " + path);
    }
  }
  auto inner = inner_->open(path, mode);
  if (writable) {
    Tracked t;
    if (mode == VfsMode::kAppend) {
      std::error_code ec;
      const auto size = std::filesystem::file_size(path, ec);
      t.written_size = ec ? 0 : size;
      t.synced_size = t.written_size;  // pre-existing bytes assumed durable
    }
    tracked_[path] = t;
  }
  return std::make_unique<FaultyVfsFile>(this, std::move(inner), path,
                                         writable);
}

void FaultyVfs::rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (dead_) return;
  account_op_locked("rename " + from);
  std::error_code ec;
  const bool target_existed = std::filesystem::exists(to, ec) && !ec;
  inner_->rename(from, to);
  // The rename lives in directory metadata: un-durable until the parent
  // directory is fsync'd, so a power cut before that undoes it.
  pending_renames_.push_back({from, to, target_existed});
  const auto it = tracked_.find(from);
  if (it != tracked_.end()) {
    tracked_[to] = it->second;
    tracked_.erase(it);
  }
}

bool FaultyVfs::remove(const std::string& path) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  if (dead_) return false;
  tracked_.erase(path);
  return inner_->remove(path);
}

void FaultyVfs::truncate(const std::string& path, std::uint64_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (dead_) return;
  account_op_locked("truncate " + path);
  inner_->truncate(path, size);
  const auto it = tracked_.find(path);
  if (it != tracked_.end()) {
    it->second.written_size = std::min(it->second.written_size, size);
    it->second.synced_size = std::min(it->second.synced_size, size);
  }
}

void FaultyVfs::sync_parent_dir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (dead_) return;
  account_op_locked("dirsync " + path);
  note_fsync_locked();
  inner_->sync_parent_dir(path);
  // Directory barrier: renames published under this directory are now
  // durable. (Single-directory state roots in this tree, so pinning all
  // pending renames is exact.)
  pending_renames_.clear();
}

void FaultyVfs::account_op_locked(const std::string& what) {
  const std::uint64_t op = op_count_++;
  if (op == config_.cut_at_op) {
    cut_power_locked();
    throw VfsError(VfsFaultKind::kPowerLoss, "power cut at " + what);
  }
  if (op >= config_.fail_from && op - config_.fail_from < config_.fail_count) {
    const VfsFaultKind kind = config_.fail_kind == VfsFaultKind::kShortWrite
                                  ? VfsFaultKind::kIoError
                                  : config_.fail_kind;
    ++faults_injected_;
    SYBIL_METRIC_COUNT("io.vfs.faults", 1);
    throw VfsError(kind, what + " failed");
  }
}

void FaultyVfs::note_fsync_locked() {
  if (fsync_count_ == config_.cut_at_fsync) {
    ++fsync_count_;
    cut_power_locked();
    throw VfsError(VfsFaultKind::kPowerLoss, "power cut at fsync barrier");
  }
  ++fsync_count_;
}

void FaultyVfs::cut_power_locked() {
  if (dead_) return;
  dead_ = true;
  ++faults_injected_;
  SYBIL_METRIC_COUNT("io.vfs.power_cuts", 1);
  // Unpin renames the directory never fsync'd: a fresh target vanishes
  // (rename undone); an overwritten target keeps the new inode (the old
  // content is unrecoverable either way — state roots here never
  // overwrite a live checkpoint name, so this branch is theoretical).
  for (auto it = pending_renames_.rbegin(); it != pending_renames_.rend();
       ++it) {
    if (it->target_existed) continue;
    try {
      inner_->rename(it->to, it->from);
    } catch (...) {
    }
    const auto t = tracked_.find(it->to);
    if (t != tracked_.end()) {
      tracked_[it->from] = t->second;
      tracked_.erase(t);
    }
  }
  pending_renames_.clear();
  // Tear every file back toward its last fsync barrier: keep the synced
  // prefix plus a seeded slice of the unsynced tail, optionally flipping
  // one bit in the last surviving unsynced byte (torn sector).
  for (auto& [path, t] : tracked_) {
    if (t.written_size <= t.synced_size) continue;
    const std::uint64_t unsynced = t.written_size - t.synced_size;
    const std::uint64_t keep =
        t.synced_size + next_rand_locked() % unsynced;  // < written_size
    try {
      inner_->truncate(path, keep);
    } catch (...) {
      continue;
    }
    if (keep > t.synced_size && (next_rand_locked() & 1) != 0) {
      flip_bit_at(path, keep - 1,
                  static_cast<unsigned>(next_rand_locked() & 7));
    }
    t.written_size = keep;
    t.synced_size = std::min(t.synced_size, keep);
  }
}

std::uint64_t FaultyVfs::next_rand_locked() { return splitmix64(rng_state_); }

}  // namespace sybil::io
