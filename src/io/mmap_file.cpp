#include "io/mmap_file.h"

#include <cstdlib>
#include <cstring>

#include "io/error.h"

#if defined(__unix__) || defined(__APPLE__)
#define SYBIL_IO_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define SYBIL_IO_HAVE_MMAP 0
#include <fstream>
#endif

namespace sybil::io {

bool mmap_enabled() noexcept {
  const char* env = std::getenv("SYBIL_IO_MMAP");
  return env == nullptr || std::strcmp(env, "off") != 0;
}

MappedFile::~MappedFile() {
#if SYBIL_IO_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
#endif
}

std::shared_ptr<const MappedFile> MappedFile::open(const std::string& path,
                                                   bool prefer_mmap) {
  auto file = std::shared_ptr<MappedFile>(new MappedFile());
#if SYBIL_IO_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    throw SnapshotError(SnapshotErrorCode::kOpenFailed,
                        "cannot open " + path);
  }
  struct ::stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw SnapshotError(SnapshotErrorCode::kOpenFailed,
                        "cannot stat " + path);
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (prefer_mmap && mmap_enabled() && size > 0) {
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      ::close(fd);
      file->data_ = static_cast<const std::byte*>(map);
      file->size_ = size;
      file->mapped_ = true;
      return file;
    }
    // mmap refused (e.g. special filesystem): fall through to read().
  }
  file->owned_.resize(size);
  std::size_t got = 0;
  while (got < size) {
    const ::ssize_t n =
        ::read(fd, file->owned_.data() + got, size - got);
    if (n < 0) {
      ::close(fd);
      throw SnapshotError(SnapshotErrorCode::kOpenFailed,
                          "read failed: " + path);
    }
    if (n == 0) break;  // file shrank underneath us; header check catches it
    got += static_cast<std::size_t>(n);
  }
  ::close(fd);
  file->owned_.resize(got);
#else
  (void)prefer_mmap;
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    throw SnapshotError(SnapshotErrorCode::kOpenFailed,
                        "cannot open " + path);
  }
  is.seekg(0, std::ios::end);
  file->owned_.resize(static_cast<std::size_t>(is.tellg()));
  is.seekg(0);
  if (!file->owned_.empty() &&
      !is.read(reinterpret_cast<char*>(file->owned_.data()),
               static_cast<std::streamsize>(file->owned_.size()))) {
    throw SnapshotError(SnapshotErrorCode::kOpenFailed,
                        "read failed: " + path);
  }
#endif
  file->data_ = file->owned_.data();
  file->size_ = file->owned_.size();
  file->mapped_ = false;
  return file;
}

}  // namespace sybil::io
