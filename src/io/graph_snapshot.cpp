#include "io/graph_snapshot.h"

#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "core/metrics/instrument.h"
#include "io/container.h"

namespace sybil::io {
namespace {

using graph::NodeId;

// Section ids shared by the graph payloads (docs/FORMATS.md).
constexpr std::uint32_t kSecMeta = 1;      // u64 node_count, u64 half_edges
constexpr std::uint32_t kSecDegrees = 2;   // u32[n] adjacency list lengths
constexpr std::uint32_t kSecNbrNode = 3;   // u32[half_edges] neighbor ids
constexpr std::uint32_t kSecNbrTime = 4;   // f64[half_edges] timestamps
constexpr std::uint32_t kSecNbrWeak = 5;   // u8[half_edges] weak-tie flags
constexpr std::uint32_t kSecOffsets = 6;   // u64[n+1] CSR offsets
constexpr std::uint32_t kSecTargets = 7;   // u32[m] CSR targets

struct GraphMeta {
  std::uint64_t node_count;
  std::uint64_t half_edges;
};

GraphMeta read_meta(const ContainerReader& reader) {
  const auto meta = reader.pod_section<std::uint64_t>(kSecMeta);
  if (meta.size() != 2) {
    throw SnapshotError(SnapshotErrorCode::kMalformedSection,
                        "graph meta section must hold 2 u64 values");
  }
  if (meta[0] > std::numeric_limits<NodeId>::max()) {
    throw SnapshotError(SnapshotErrorCode::kFormatViolation,
                        "node count exceeds NodeId range");
  }
  return {meta[0], meta[1]};
}

}  // namespace

void save_graph_snapshot(const graph::TimestampedGraph& g,
                         const std::string& path) {
  SYBIL_METRIC_SCOPED_TIMER(span, "io.graph.save");
  const NodeId n = g.node_count();
  const std::uint64_t half_edges = 2 * g.edge_count();
  std::vector<std::uint32_t> degrees(n);
  std::vector<NodeId> nodes;
  std::vector<double> times;
  std::vector<std::uint8_t> weak;
  nodes.reserve(half_edges);
  times.reserve(half_edges);
  weak.reserve(half_edges);
  for (NodeId u = 0; u < n; ++u) {
    degrees[u] = g.degree(u);
    for (const graph::Neighbor& nb : g.neighbors(u)) {
      nodes.push_back(nb.node);
      times.push_back(nb.created_at);
      weak.push_back(nb.weak ? 1 : 0);
    }
  }
  ContainerWriter writer(PayloadKind::kTimestampedGraph);
  const std::uint64_t meta[2] = {n, half_edges};
  writer.add_pod_section<std::uint64_t>(kSecMeta, meta);
  writer.add_pod_section<std::uint32_t>(kSecDegrees, degrees);
  writer.add_pod_section<NodeId>(kSecNbrNode, nodes);
  writer.add_pod_section<double>(kSecNbrTime, times);
  writer.add_pod_section<std::uint8_t>(kSecNbrWeak, weak);
  writer.commit(path);
}

graph::TimestampedGraph load_graph_snapshot(const std::string& path) {
  SYBIL_METRIC_SCOPED_TIMER(span, "io.graph.load");
  const ContainerReader reader(path, PayloadKind::kTimestampedGraph);
  const GraphMeta meta = read_meta(reader);
  const auto degrees = reader.pod_section<std::uint32_t>(kSecDegrees);
  const auto nodes = reader.pod_section<NodeId>(kSecNbrNode);
  const auto times = reader.pod_section<double>(kSecNbrTime);
  const auto weak = reader.pod_section<std::uint8_t>(kSecNbrWeak);
  if (degrees.size() != meta.node_count || nodes.size() != meta.half_edges ||
      times.size() != meta.half_edges || weak.size() != meta.half_edges ||
      meta.half_edges % 2 != 0) {
    throw SnapshotError(SnapshotErrorCode::kMalformedSection,
                        "graph sections inconsistent with meta counts");
  }
  std::uint64_t sum = 0;
  for (const std::uint32_t d : degrees) sum += d;
  if (sum != meta.half_edges) {
    throw SnapshotError(SnapshotErrorCode::kFormatViolation,
                        "degree sum does not match half-edge count");
  }
  std::vector<std::vector<graph::Neighbor>> adj(meta.node_count);
  std::size_t at = 0;
  for (std::uint64_t u = 0; u < meta.node_count; ++u) {
    adj[u].reserve(degrees[u]);
    for (std::uint32_t k = 0; k < degrees[u]; ++k, ++at) {
      if (nodes[at] >= meta.node_count || nodes[at] == u) {
        throw SnapshotError(SnapshotErrorCode::kFormatViolation,
                            "neighbor id out of range or self-loop");
      }
      adj[u].push_back({nodes[at], times[at], weak[at] != 0});
    }
  }
  return graph::TimestampedGraph::from_adjacency(std::move(adj));
}

void save_csr_snapshot(const graph::CsrGraph& g, const std::string& path) {
  SYBIL_METRIC_SCOPED_TIMER(span, "io.csr.save");
  ContainerWriter writer(PayloadKind::kCsrGraph);
  const std::uint64_t meta[2] = {g.node_count(), g.targets().size()};
  writer.add_pod_section<std::uint64_t>(kSecMeta, meta);
  writer.add_pod_section<std::uint64_t>(kSecOffsets, g.offsets());
  writer.add_pod_section<NodeId>(kSecTargets, g.targets());
  writer.commit(path);
}

graph::CsrGraph load_csr_snapshot(const std::string& path, bool prefer_mmap) {
  SYBIL_METRIC_SCOPED_TIMER(span, "io.csr.load");
  // The reader is moved into the shared backing below so the mapping
  // outlives this function while the view reads it in place.
  auto reader = std::make_shared<ContainerReader>(path, PayloadKind::kCsrGraph,
                                                  prefer_mmap);
  const GraphMeta meta = read_meta(*reader);
  const auto offsets = reader->pod_section<std::uint64_t>(kSecOffsets);
  const auto targets = reader->pod_section<NodeId>(kSecTargets);
  if (offsets.size() != meta.node_count + 1 ||
      targets.size() != meta.half_edges) {
    throw SnapshotError(SnapshotErrorCode::kMalformedSection,
                        "csr sections inconsistent with meta counts");
  }
  if (offsets.front() != 0 || offsets.back() != targets.size()) {
    throw SnapshotError(SnapshotErrorCode::kFormatViolation,
                        "csr offsets do not bracket the target array");
  }
  for (std::size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      throw SnapshotError(SnapshotErrorCode::kFormatViolation,
                          "csr offsets not monotonic");
    }
  }
  for (const NodeId t : targets) {
    if (t >= meta.node_count) {
      throw SnapshotError(SnapshotErrorCode::kFormatViolation,
                          "csr target out of range");
    }
  }
  SYBIL_METRIC_COUNT(reader->mapped() ? "io.csr.load_mmap"
                                      : "io.csr.load_stream",
                     1);
  return graph::CsrGraph::view(offsets, targets, std::move(reader));
}

}  // namespace sybil::io
