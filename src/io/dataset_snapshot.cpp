#include "io/dataset_snapshot.h"

#include <vector>

#include "core/metrics/instrument.h"
#include "io/container.h"

namespace sybil::io {
namespace {

constexpr std::uint32_t kSecMeta = 1;    // u64 rows, u64 features
constexpr std::uint32_t kSecData = 2;    // f64[rows*features] row-major
constexpr std::uint32_t kSecLabels = 3;  // i32[rows], each +1 or -1

}  // namespace

void save_dataset_snapshot(const ml::Dataset& data, const std::string& path) {
  SYBIL_METRIC_SCOPED_TIMER(span, "io.dataset.save");
  ContainerWriter writer(PayloadKind::kDataset);
  const std::uint64_t meta[2] = {data.size(), data.feature_count()};
  writer.add_pod_section<std::uint64_t>(kSecMeta, meta);
  writer.add_pod_section<double>(kSecData, data.raw_data());
  writer.add_pod_section<int>(kSecLabels, data.raw_labels());
  writer.commit(path);
}

ml::Dataset load_dataset_snapshot(const std::string& path) {
  SYBIL_METRIC_SCOPED_TIMER(span, "io.dataset.load");
  const ContainerReader reader(path, PayloadKind::kDataset);
  const auto meta = reader.pod_section<std::uint64_t>(kSecMeta);
  if (meta.size() != 2) {
    throw SnapshotError(SnapshotErrorCode::kMalformedSection,
                        "dataset meta section must hold 2 u64 values");
  }
  const std::uint64_t rows = meta[0];
  const std::uint64_t features = meta[1];
  const auto values = reader.pod_section<double>(kSecData);
  const auto labels = reader.pod_section<int>(kSecLabels);
  if (labels.size() != rows || values.size() != rows * features) {
    throw SnapshotError(SnapshotErrorCode::kMalformedSection,
                        "dataset sections inconsistent with meta counts");
  }
  for (const int label : labels) {
    if (label != ml::kSybilLabel && label != ml::kNormalLabel) {
      throw SnapshotError(SnapshotErrorCode::kFormatViolation,
                          "dataset label must be +1 or -1");
    }
  }
  return ml::Dataset::from_raw(
      features, std::vector<double>(values.begin(), values.end()),
      std::vector<int>(labels.begin(), labels.end()));
}

}  // namespace sybil::io
