#include "io/crc32.h"

#include <array>

namespace sybil::io {
namespace {

// Slice-by-one table for the reflected IEEE polynomial 0xEDB88320.
// Generated at static-init time; 1 KiB, fits comfortably in L1.
constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32(std::span<const std::byte> bytes,
                    std::uint32_t seed) noexcept {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const std::byte b : bytes) {
    c = kTable[(c ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace sybil::io
