// Typed error taxonomy for persistence code.
//
// Every loader in the tree — the binary container (io/container.h), the
// snapshot payload decoders, the simulator checkpoint reader and the
// plain-text edge-list parser (graph/io.h) — reports failure through
// SnapshotError, so callers can branch on *why* a file was rejected
// (retry on kOpenFailed, regenerate on kChecksumMismatch, upgrade on
// kUnsupportedVersion) instead of string-matching what().
//
// Header-only on purpose: sybil_graph's text loader shares the taxonomy
// without linking sybil_io (which itself links sybil_graph).
#pragma once

#include <stdexcept>
#include <string>

namespace sybil::io {

enum class SnapshotErrorCode {
  kOpenFailed,          // file missing or unreadable
  kWriteFailed,         // write/fsync/rename failed; no partial file left
  kTruncated,           // file shorter than its header/section table claims
  kBadMagic,            // not a sybil snapshot (or not this text format)
  kBadEndianness,       // written on an incompatible-endian machine
  kUnsupportedVersion,  // format version newer than this build understands
  kWrongPayload,        // valid container, but not the expected payload kind
  kChecksumMismatch,    // a section's CRC32 does not match its bytes
  kMalformedSection,    // section missing, overlapping, misaligned or short
  kFormatViolation,     // payload decodes but breaks a format invariant
};

/// Returns a stable identifier ("truncated", "bad-magic", ...) for
/// logging and test assertions.
constexpr const char* to_string(SnapshotErrorCode code) noexcept {
  switch (code) {
    case SnapshotErrorCode::kOpenFailed: return "open-failed";
    case SnapshotErrorCode::kWriteFailed: return "write-failed";
    case SnapshotErrorCode::kTruncated: return "truncated";
    case SnapshotErrorCode::kBadMagic: return "bad-magic";
    case SnapshotErrorCode::kBadEndianness: return "bad-endianness";
    case SnapshotErrorCode::kUnsupportedVersion: return "unsupported-version";
    case SnapshotErrorCode::kWrongPayload: return "wrong-payload";
    case SnapshotErrorCode::kChecksumMismatch: return "checksum-mismatch";
    case SnapshotErrorCode::kMalformedSection: return "malformed-section";
    case SnapshotErrorCode::kFormatViolation: return "format-violation";
  }
  return "unknown";
}

/// Thrown by every loader/saver in io/, osn/checkpoint and graph/io.
/// Derives from std::runtime_error so pre-existing catch sites keep
/// working; new code should catch SnapshotError and inspect code().
class SnapshotError : public std::runtime_error {
 public:
  SnapshotError(SnapshotErrorCode code, const std::string& detail)
      : std::runtime_error(std::string("snapshot [") + to_string(code) +
                           "]: " + detail),
        code_(code) {}

  SnapshotErrorCode code() const noexcept { return code_; }

 private:
  SnapshotErrorCode code_;
};

}  // namespace sybil::io
