// CRC-32 (IEEE 802.3 polynomial, reflected) for snapshot section
// integrity. A bit flip anywhere in a section payload is detected at
// load time and reported as SnapshotErrorCode::kChecksumMismatch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace sybil::io {

/// CRC of `bytes`, optionally continuing from a previous partial CRC
/// (pass the prior return value to checksum data in chunks).
std::uint32_t crc32(std::span<const std::byte> bytes,
                    std::uint32_t seed = 0) noexcept;

}  // namespace sybil::io
