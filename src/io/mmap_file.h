// Read-only file mapping with a portable fallback.
//
// On POSIX the file is mmap'd so large snapshot sections (CSR offset and
// target arrays) are consumed in place — the page cache is the only copy,
// and loading a graph snapshot costs page-table setup instead of a full
// read+memcpy. When mmap is unavailable, fails, or is disabled with
// SYBIL_IO_MMAP=off, the file is read() into an owned buffer; callers see
// the same span either way.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace sybil::io {

class MappedFile {
 public:
  /// Maps (or reads) the whole file. Throws SnapshotError(kOpenFailed)
  /// if the file cannot be opened or read. `prefer_mmap=false` forces
  /// the read() path; the SYBIL_IO_MMAP=off environment knob does the
  /// same globally (useful for A/B-testing the two paths).
  static std::shared_ptr<const MappedFile> open(const std::string& path,
                                                bool prefer_mmap = true);

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  std::span<const std::byte> bytes() const noexcept {
    return {data_, size_};
  }
  std::size_t size() const noexcept { return size_; }
  /// True when the bytes live in a kernel mapping (zero-copy path).
  bool mapped() const noexcept { return mapped_; }

 private:
  MappedFile() = default;

  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
  std::vector<std::byte> owned_;  // fallback storage when !mapped_
};

/// True unless SYBIL_IO_MMAP=off is set in the environment.
bool mmap_enabled() noexcept;

}  // namespace sybil::io
