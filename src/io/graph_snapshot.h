// Binary graph snapshots over the io container (docs/FORMATS.md §Graph).
//
// Two payloads:
//   - TimestampedGraph: full fidelity — per-node adjacency lists with
//     neighbor ids, edge-creation timestamps and weak-tie flags, in
//     insertion order (which the temporal analyses rely on and which a
//     text edge list cannot represent losslessly);
//   - CsrGraph: the structure-only CSR arrays, laid out so the loader
//     can serve the graph zero-copy out of an mmap'd file — offsets and
//     targets are read in place, no materialization.
//
// Both loaders reject truncated, bit-flipped, misdeclared or
// future-versioned files with typed SnapshotErrors before any graph
// object is constructed — there is no partially loaded state.
#pragma once

#include <string>

#include "graph/csr.h"
#include "graph/graph.h"

namespace sybil::io {

/// Atomically writes `path` (temp file + rename).
void save_graph_snapshot(const graph::TimestampedGraph& g,
                         const std::string& path);
void save_csr_snapshot(const graph::CsrGraph& g, const std::string& path);

graph::TimestampedGraph load_graph_snapshot(const std::string& path);

/// Loads a CSR snapshot. With `prefer_mmap` (and SYBIL_IO_MMAP not
/// "off") the returned graph is a zero-copy view over the mapping,
/// which it keeps alive; otherwise the arrays live in an owned buffer
/// (still without per-element conversion).
graph::CsrGraph load_csr_snapshot(const std::string& path,
                                  bool prefer_mmap = true);

}  // namespace sybil::io
