// Shared helpers for the per-figure/table bench binaries.
//
// Every bench prints (a) a header with the experiment id and the
// workload parameters, (b) the series/rows the paper's figure or table
// reports (tab-separated, gnuplot-ready), and (c) the headline summary
// statistics next to the paper's values. Scale knobs are positional CLI
// arguments so `bench_x` runs the calibrated default and
// `bench_x <normals> <sybils> <hours>` runs a custom scale.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "attack/campaign.h"
#include "core/ground_truth.h"
#include "osn/simulator.h"
#include "stats/cdf.h"

namespace sybil::bench {

inline void print_header(const char* experiment, const std::string& workload) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("workload: %s\n", workload.c_str());
  std::printf("==============================================================\n");
}

/// Prints a CDF as "x<TAB>percent" rows under a series label.
inline void print_cdf(const char* label, const std::vector<double>& sample,
                      std::size_t points = 25, bool log_x = false) {
  const stats::EmpiricalCdf cdf(sample);
  std::printf("# series: %s (n=%zu, mean=%.4g)\n", label, cdf.size(),
              cdf.mean());
  std::printf("%s", cdf.to_tsv(points, log_x && cdf.min() > 0.0).c_str());
}

/// Ground-truth simulation at paper scale (1000 + 1000 subjects over a
/// 60k-user background, 400 h), overridable as:
///   bench <background> <subjects_per_class> [seed]
inline osn::GroundTruthConfig ground_truth_config(int argc, char** argv) {
  osn::GroundTruthConfig config;
  config.subject_normals = 1000;
  config.subject_sybils = 1000;
  if (argc > 1) {
    config.background_users =
        static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10));
  }
  if (argc > 2) {
    const auto subjects =
        static_cast<std::uint32_t>(std::strtoul(argv[2], nullptr, 10));
    config.subject_normals = subjects;
    config.subject_sybils = subjects;
  }
  if (argc > 3) config.seed = std::strtoull(argv[3], nullptr, 10);
  return config;
}

inline std::string describe(const osn::GroundTruthConfig& c) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "ground-truth sim: %u background users, %u+%u subjects, "
                "%.0f h, seed %llu",
                c.background_users, c.subject_normals, c.subject_sybils,
                c.sim_hours, static_cast<unsigned long long>(c.seed));
  return buf;
}

/// Campaign simulation at the calibrated topology scale, overridable as:
///   bench <normals> <sybils> <hours> [seed]
inline attack::CampaignConfig campaign_config(int argc, char** argv) {
  attack::CampaignConfig config;
  if (argc > 1) {
    config.normal_users =
        static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10));
  }
  if (argc > 2) {
    config.sybils =
        static_cast<std::uint32_t>(std::strtoul(argv[2], nullptr, 10));
  }
  if (argc > 3) config.campaign_hours = std::strtod(argv[3], nullptr);
  if (argc > 4) config.seed = std::strtoull(argv[4], nullptr, 10);
  return config;
}

inline std::string describe(const attack::CampaignConfig& c) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "campaign sim: %u normal users, %u Sybils, %.0f h window, "
                "seed %llu",
                c.normal_users, c.sybils, c.campaign_hours,
                static_cast<unsigned long long>(c.seed));
  return buf;
}

}  // namespace sybil::bench
