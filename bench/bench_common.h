// Shared helpers for the per-figure/table bench binaries.
//
// Every bench prints (a) a header with the experiment id and the
// workload parameters, (b) the series/rows the paper's figure or table
// reports (tab-separated, gnuplot-ready), and (c) the headline summary
// statistics next to the paper's values. Scale knobs are positional CLI
// arguments so `bench_x` runs the calibrated default and
// `bench_x <normals> <sybils> <hours>` runs a custom scale.
//
// CLI parsing is strict: a positional argument that is not a number of
// the expected kind, or overflows its range, aborts with a usage
// message instead of silently feeding strtoul garbage into the config.
#pragma once

#include <cerrno>
#include <charconv>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "attack/campaign.h"
#include "core/ground_truth.h"
#include "osn/simulator.h"
#include "stats/cdf.h"

namespace sybil::bench {

[[noreturn]] inline void usage_error(const char* prog, const char* usage,
                                     const char* bad_arg, const char* what) {
  std::fprintf(stderr, "error: invalid %s: '%s'\n", what, bad_arg);
  std::fprintf(stderr, "usage: %s %s\n", prog, usage);
  std::exit(2);
}

/// Strict unsigned parse: the whole token must be a decimal integer in
/// [0, max]. Rejects empty strings, signs, trailing junk and overflow.
inline std::uint64_t parse_count(const char* prog, const char* usage,
                                 const char* arg, const char* what,
                                 std::uint64_t max) {
  std::uint64_t value = 0;
  const char* end = arg + std::strlen(arg);
  const auto [ptr, ec] = std::from_chars(arg, end, value, 10);
  if (ec != std::errc{} || ptr != end || value > max) {
    usage_error(prog, usage, arg, what);
  }
  return value;
}

/// Strict non-negative double parse: whole token, finite, >= 0.
inline double parse_hours(const char* prog, const char* usage,
                          const char* arg, const char* what) {
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(arg, &end);
  if (end == arg || *end != '\0' || errno == ERANGE || !(value >= 0.0) ||
      value > 1e12) {
    usage_error(prog, usage, arg, what);
  }
  return value;
}

inline void print_header(const char* experiment, const std::string& workload) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("workload: %s\n", workload.c_str());
  std::printf("==============================================================\n");
}

/// Prints a CDF as "x<TAB>percent" rows under a series label.
inline void print_cdf(const char* label, const std::vector<double>& sample,
                      std::size_t points = 25, bool log_x = false) {
  const stats::EmpiricalCdf cdf(sample);
  std::printf("# series: %s (n=%zu, mean=%.4g)\n", label, cdf.size(),
              cdf.mean());
  std::printf("%s", cdf.to_tsv(points, log_x && cdf.min() > 0.0).c_str());
}

inline constexpr char kGroundTruthUsage[] =
    "[background_users] [subjects_per_class] [seed]";

/// Ground-truth simulation at paper scale (1000 + 1000 subjects over a
/// 60k-user background, 400 h), overridable as:
///   bench <background> <subjects_per_class> [seed]
inline osn::GroundTruthConfig ground_truth_config(int argc, char** argv) {
  const char* prog = argc > 0 ? argv[0] : "bench";
  osn::GroundTruthConfig config;
  config.subject_normals = 1000;
  config.subject_sybils = 1000;
  if (argc > 1) {
    config.background_users = static_cast<std::uint32_t>(parse_count(
        prog, kGroundTruthUsage, argv[1], "background user count", 50'000'000));
  }
  if (argc > 2) {
    const auto subjects = static_cast<std::uint32_t>(
        parse_count(prog, kGroundTruthUsage, argv[2], "subjects per class",
                    10'000'000));
    config.subject_normals = subjects;
    config.subject_sybils = subjects;
  }
  if (argc > 3) {
    config.seed = parse_count(prog, kGroundTruthUsage, argv[3], "seed",
                              std::numeric_limits<std::uint64_t>::max());
  }
  return config;
}

inline std::string describe(const osn::GroundTruthConfig& c) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "ground-truth sim: %u background users, %u+%u subjects, "
                "%.0f h, seed %llu",
                c.background_users, c.subject_normals, c.subject_sybils,
                c.sim_hours, static_cast<unsigned long long>(c.seed));
  return buf;
}

inline constexpr char kCampaignUsage[] =
    "[normal_users] [sybils] [campaign_hours] [seed]";

/// Campaign simulation at the calibrated topology scale, overridable as:
///   bench <normals> <sybils> <hours> [seed]
inline attack::CampaignConfig campaign_config(int argc, char** argv) {
  const char* prog = argc > 0 ? argv[0] : "bench";
  attack::CampaignConfig config;
  if (argc > 1) {
    config.normal_users = static_cast<std::uint32_t>(parse_count(
        prog, kCampaignUsage, argv[1], "normal user count", 50'000'000));
  }
  if (argc > 2) {
    config.sybils = static_cast<std::uint32_t>(
        parse_count(prog, kCampaignUsage, argv[2], "sybil count", 50'000'000));
  }
  if (argc > 3) {
    config.campaign_hours =
        parse_hours(prog, kCampaignUsage, argv[3], "campaign hours");
  }
  if (argc > 4) {
    config.seed = parse_count(prog, kCampaignUsage, argv[4], "seed",
                              std::numeric_limits<std::uint64_t>::max());
  }
  return config;
}

inline std::string describe(const attack::CampaignConfig& c) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "campaign sim: %u normal users, %u Sybils, %.0f h window, "
                "seed %llu",
                c.normal_users, c.sybils, c.campaign_hours,
                static_cast<unsigned long long>(c.seed));
  return buf;
}

}  // namespace sybil::bench
