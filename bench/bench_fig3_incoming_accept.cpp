// Figure 3: CDF of the ratio of accepted incoming friend requests.
// Paper: normal users are spread across the board; Sybils accept nearly
// everything (~80% accept all), with the shortfall explained by Renren
// banning them before they could answer outstanding requests.
#include "bench_common.h"
#include "runner.h"

#include "stats/summary.h"

int main(int argc, char** argv) {
  using namespace sybil;
  const auto config = bench::ground_truth_config(argc, argv);
  bench::print_header("Figure 3 — incoming request accept ratio",
                      bench::describe(config));
  bench::GroundTruthLab lab(config);
  const auto& normal = lab.normal_columns();
  const auto& sybil = lab.sybil_columns();

  bench::print_cdf("Normal incoming accept ratio", normal.incoming_accept);
  bench::print_cdf("Sybil incoming accept ratio", sybil.incoming_accept);

  // Censoring: Sybils banned with pending incoming requests.
  std::size_t full = 0, censored = 0, with_incoming = 0;
  for (osn::NodeId s : lab.subject_sybils()) {
    const auto& led = lab.network().ledger(s);
    if (led.received() == 0) continue;
    ++with_incoming;
    if (led.received_accepted() == led.received()) {
      ++full;
    } else if (lab.network().account(s).banned()) {
      ++censored;
    }
  }
  std::printf("\n# headline numbers (paper value in brackets)\n");
  std::printf("Sybils accepting 100%% of incoming: %.1f%%  [~80%%]\n",
              100.0 * static_cast<double>(full) /
                  static_cast<double>(std::max<std::size_t>(1, with_incoming)));
  std::printf("Sybils below 100%% due to ban censoring: %.1f%%  "
              "[explains most of the rest]\n",
              100.0 * static_cast<double>(censored) /
                  static_cast<double>(std::max<std::size_t>(1, with_incoming)));
  std::printf("Normal mean incoming accept: %.3f  [spread across board]\n",
              stats::summarize(normal.incoming_accept).mean());
  return 0;
}
