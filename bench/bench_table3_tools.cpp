// Table 3: the commercial Sybil creation/management tools and, beyond
// the paper's static survey, a behavioral measurement of each tool
// profile: (a) the popularity bias of its snowball target selection,
// and (b) the accidental Sybil-edge rate it induces when an entire
// campaign runs on that tool alone.
#include "bench_common.h"

#include "attack/tools.h"
#include "core/topology.h"
#include "graph/generators.h"
#include "graph/sampling.h"

int main(int, char**) {
  using namespace sybil;
  bench::print_header("Table 3 — Sybil creation and management tools",
                      "tool survey + snowball-bias measurement");

  std::printf("%-36s %-9s %-15s %5s %8s\n", "Tool", "Platform", "Cost",
              "bias", "explore");
  for (const auto& tool : attack::table3_tools()) {
    std::printf("%-36s %-9s %-15s %5.1f %7.0f%%\n", tool.name.c_str(),
                tool.platform.c_str(), tool.cost.c_str(), tool.target_bias,
                100.0 * tool.uniform_mix);
  }

  // --- (a) Popularity bias of snowball sampling per tool. ---
  std::printf("\n# snowball sampling bias on a 50k-user OSN-like graph\n");
  std::printf("%-36s %18s %22s\n", "Tool", "mean target degree",
              "vs graph mean (factor)");
  stats::Rng graph_rng(2024);
  const auto base = graph::osn_like_graph(
      {.nodes = 50'000, .mean_links = 12.0, .triadic_closure = 0.2,
       .pa_beta = 1.0},
      graph_rng);
  const auto csr = graph::CsrGraph::from(base);
  const double graph_mean =
      2.0 * static_cast<double>(csr.edge_count()) / csr.node_count();
  for (const auto& tool : attack::table3_tools()) {
    stats::Rng rng(7 + static_cast<std::uint64_t>(tool.target_bias * 10));
    graph::BiasedSnowballSampler sampler(csr, /*seed=*/1, tool.target_bias,
                                         rng);
    const auto targets = sampler.sample(2'000);
    double mean_deg = 0.0;
    for (auto t : targets) mean_deg += csr.degree(t);
    mean_deg /= static_cast<double>(targets.size());
    std::printf("%-36s %18.1f %22.2f\n", tool.name.c_str(), mean_deg,
                mean_deg / graph_mean);
  }

  // --- (b) Accidental Sybil-edge rate per tool (single-tool campaigns,
  // reduced scale). ---
  std::printf("\n# single-tool campaigns (30k users, 3k Sybils, 12k h)\n");
  std::printf("%-36s %14s %20s\n", "Tool (bias)", "Sybil edges",
              "Sybils w/ Sybil edge");
  const attack::CampaignConfig base_cfg = [&] {
    attack::CampaignConfig c;
    c.normal_users = 30'000;
    c.sybils = 3'000;
    c.campaign_hours = 12'000.0;
    return c;
  }();
  for (const auto& tool : attack::table3_tools()) {
    attack::CampaignConfig cfg = base_cfg;
    cfg.tools = {{tool.target_bias, tool.uniform_mix, 1.0}};
    cfg.seed = 31 + static_cast<std::uint64_t>(tool.target_bias * 100);
    const auto result = attack::run_campaign(cfg);
    const core::TopologyAnalyzer topo(*result.network, result.sybil_ids);
    char label[64];
    std::snprintf(label, sizeof(label), "%.28s (%.1f)", tool.name.c_str(),
                  tool.target_bias);
    std::printf("%-36s %14llu %19.1f%%\n", label,
                static_cast<unsigned long long>(topo.total_sybil_edges()),
                100.0 * topo.fraction_with_sybil_edge());
  }
  std::printf("\n# reading: stronger popularity bias -> more accidental "
              "Sybil edges,\n# the paper's Section 3.4 mechanism.\n");
  return 0;
}
