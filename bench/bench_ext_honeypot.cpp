// Extension experiment — the paper's Related Work remark made
// quantitative: "unless social honeypots are engineered to appear
// popular, they are unlikely to be targeted by spammers" (re: Webb et
// al.'s MySpace honeypots).
//
// After a campaign we bin normal users by degree and measure, per bin,
// the probability of having received at least one Sybil friend request
// and the mean number received — the dose-response curve a honeypot
// operator cares about.
#include <algorithm>

#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace sybil;
  attack::CampaignConfig config;
  config.normal_users = 60'000;
  config.sybils = 6'000;
  config.campaign_hours = 20'000.0;
  if (argc > 1) {
    config.normal_users =
        static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10));
  }
  if (argc > 2) {
    config.sybils =
        static_cast<std::uint32_t>(std::strtoul(argv[2], nullptr, 10));
  }
  if (argc > 3) config.campaign_hours = std::strtod(argv[3], nullptr);
  bench::print_header(
      "Extension — honeypot targeting probability vs popularity",
      bench::describe(config));
  const auto result = attack::run_campaign(config);
  const osn::Network& net = *result.network;
  const auto& g = net.graph();

  // Received requests per normal user ≈ Sybil requests (normals do not
  // send in the campaign model, so every received request is from a
  // Sybil).
  struct Bin {
    const char* label;
    std::uint32_t lo, hi;
    std::uint64_t users = 0, targeted = 0, requests = 0;
  };
  Bin bins[] = {
      {"degree 0-9 (fresh honeypot)", 0, 9},
      {"degree 10-29", 10, 29},
      {"degree 30-99", 30, 99},
      {"degree 100-299", 100, 299},
      {"degree 300+ (popular)", 300, 0xffffffffu},
  };
  for (graph::NodeId u : result.normal_ids) {
    const std::uint32_t d = g.degree(u);
    for (Bin& b : bins) {
      if (d >= b.lo && d <= b.hi) {
        ++b.users;
        const auto received = net.ledger(u).received();
        b.requests += received;
        b.targeted += received > 0;
        break;
      }
    }
  }

  std::printf("%-30s %10s %14s %18s\n", "honeypot profile", "users",
              "ever targeted", "requests per user");
  for (const Bin& b : bins) {
    if (b.users == 0) {
      std::printf("%-30s %10s\n", b.label, "-");
      continue;
    }
    std::printf("%-30s %10llu %13.1f%% %18.2f\n", b.label,
                static_cast<unsigned long long>(b.users),
                100.0 * static_cast<double>(b.targeted) /
                    static_cast<double>(b.users),
                static_cast<double>(b.requests) /
                    static_cast<double>(b.users));
  }
  std::printf(
      "\n# reading: a passive, low-degree honeypot is nearly invisible to\n"
      "# popularity-hunting Sybil tools; honeypots must be engineered to\n"
      "# look popular — exactly the paper's caveat about Webb et al.\n");
  return 0;
}
