// Figure 2: CDF of the ratio of accepted outgoing friend requests.
// Paper: normal users average 79%, Sybils 26%.
#include "bench_common.h"
#include "runner.h"

#include "stats/summary.h"

int main(int argc, char** argv) {
  using namespace sybil;
  const auto config = bench::ground_truth_config(argc, argv);
  bench::print_header("Figure 2 — outgoing request accept ratio",
                      bench::describe(config));
  bench::GroundTruthLab lab(config);
  const auto& normal = lab.normal_columns();
  const auto& sybil = lab.sybil_columns();

  bench::print_cdf("Normal outgoing accept ratio", normal.outgoing_accept);
  bench::print_cdf("Sybil outgoing accept ratio", sybil.outgoing_accept);

  std::printf("\n# headline numbers (paper value in brackets)\n");
  std::printf("Normal mean accept ratio: %.3f  [0.79]\n",
              stats::summarize(normal.outgoing_accept).mean());
  std::printf("Sybil mean accept ratio:  %.3f  [0.26]\n",
              stats::summarize(sybil.outgoing_accept).mean());
  return 0;
}
