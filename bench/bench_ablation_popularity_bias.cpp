// Ablation 1 (DESIGN.md §5): the two mechanisms behind accidental Sybil
// edges — popularity-biased target selection and the accept-all-incoming
// policy. Sweeping the bias exponent shows the Sybil-edge rate and the
// component structure respond exactly as the paper's Section 3.4
// mechanism predicts; disabling accept-all removes Sybil edges entirely.
#include "bench_common.h"
#include "core/topology.h"

int main(int, char**) {
  using namespace sybil;
  bench::print_header("Ablation — popularity bias & accept-all policy",
                      "campaigns at 30k users / 3k Sybils / 12k h, "
                      "single-tool mixes");

  attack::CampaignConfig base;
  base.normal_users = 30'000;
  base.sybils = 3'000;
  base.campaign_hours = 12'000.0;

  std::printf("%-28s %12s %14s %16s %14s\n", "variant", "Sybil edges",
              "frac w/ edge", "largest comp", "components");
  const auto run = [&](const char* label, attack::CampaignConfig cfg) {
    const auto result = attack::run_campaign(cfg);
    const core::TopologyAnalyzer topo(*result.network, result.sybil_ids);
    const auto& stats = topo.component_stats();
    std::printf("%-28s %12llu %13.1f%% %16u %14zu\n", label,
                static_cast<unsigned long long>(topo.total_sybil_edges()),
                100.0 * topo.fraction_with_sybil_edge(),
                stats.empty() ? 0 : stats.front().sybils, stats.size());
  };

  for (double bias : {0.0, 0.5, 1.0, 1.5, 2.0}) {
    attack::CampaignConfig cfg = base;
    cfg.tools = {{bias, 0.05, 1.0}};
    cfg.seed = 500 + static_cast<std::uint64_t>(bias * 10);
    char label[64];
    std::snprintf(label, sizeof(label), "bias = %.1f", bias);
    run(label, cfg);
  }

  // Accept-all ablation: when Sybil targets answer incoming requests
  // like ordinary users instead of accepting everything, the accidental
  // Sybil-edge channel mostly closes (a Sybil edge now needs BOTH the
  // biased sample to hit a Sybil AND an openness-gated accept).
  {
    attack::CampaignConfig cfg = base;
    cfg.tools = {{1.0, 0.05, 1.0}};
    cfg.seed = 510;  // same seed as the bias=1.0 row above
    cfg.sybil_accept_all = false;
    run("bias = 1.0, no accept-all", cfg);
  }
  std::printf(
      "\n# reading: Sybil-edge volume and the giant component grow with\n"
      "# targeting bias (until extreme bias saturates on the same few\n"
      "# targets), and collapse when Sybils stop auto-accepting —\n"
      "# accidental edges are a byproduct of hunting popular targets\n"
      "# plus the accept-all policy, not attacker intent.\n");
  return 0;
}
