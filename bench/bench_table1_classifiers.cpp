// Table 1: confusion matrices of the SVM classifier (5-fold CV) and the
// threshold-based detector on the ground-truth dataset.
// Paper: SVM 98.99/1.01 + 0.66/99.34; threshold 98.68/1.32 + 0.5/99.5.
//
// Two threshold rows are reported: the paper's literal constants
// (accept<0.5 ∧ rate>=20 ∧ cc<0.01) and a rule tuned to this deployment
// by the adaptive scheme — the paper's own detector is "properly tuned",
// so the tuned row is the faithful comparison at simulation scale.
#include <memory>

#include "bench_common.h"
#include "core/adaptive.h"
#include "core/threshold_detector.h"
#include "ml/kfold.h"
#include "ml/logistic.h"
#include "ml/scaler.h"
#include "ml/svm.h"

int main(int argc, char** argv) {
  using namespace sybil;
  const auto config = bench::ground_truth_config(argc, argv);
  bench::print_header("Table 1 — SVM vs threshold classifier",
                      bench::describe(config));
  osn::GroundTruthSimulator sim(config);
  sim.run();
  const ml::Dataset data = core::build_ground_truth_dataset(
      sim.network(), sim.subject_normals(), sim.subject_sybils());

  const auto features_of = [](std::span<const double> row) {
    core::SybilFeatures f;
    f.invite_rate_short = row[0];
    f.outgoing_accept_ratio = row[1];
    f.incoming_accept_ratio = row[2];
    f.clustering_coefficient = row[3];
    return f;
  };

  // --- SVM, 5-fold cross validation (as the paper partitions). ---
  stats::Rng rng(config.seed + 1);
  const ml::ConfusionMatrix svm_cm = ml::cross_validate(
      data, 5,
      [](const ml::Dataset& train) -> ml::Predictor {
        auto scaler = std::make_shared<ml::StandardScaler>();
        scaler->fit(train);
        auto model = std::make_shared<ml::SvmModel>(
            ml::SvmModel::train(scaler->transform(train), ml::SvmParams{}));
        return [scaler, model](std::span<const double> row) {
          return model->predict(scaler->transform(row));
        };
      },
      rng);
  std::printf("\n%s\n", svm_cm.to_table("SVM (5-fold CV)").c_str());
  std::printf("[paper: 98.99%% / 1.01%% ; 0.66%% / 99.34%%]\n");

  // --- Threshold rule with the paper's constants. ---
  const auto evaluate_rule = [&](const core::ThresholdDetector& det) {
    ml::ConfusionMatrix cm;
    for (std::size_t i = 0; i < data.size(); ++i) {
      const bool flagged = det.is_sybil(features_of(data.row(i)));
      cm.record(data.label(i),
                flagged ? ml::kSybilLabel : ml::kNormalLabel);
    }
    return cm;
  };
  const auto paper_cm = evaluate_rule(core::ThresholdDetector{});
  std::printf("\n%s\n",
              paper_cm.to_table("Threshold (paper constants)").c_str());
  std::printf("[paper: 98.68%% / 1.32%% ; 0.5%% / 99.5%%]\n");

  // --- Threshold rule tuned by the adaptive scheme on held-out data. ---
  core::AdaptiveConfig tuner_cfg;
  tuner_cfg.smoothing = 1.0;
  core::AdaptiveThresholdTuner tuner(tuner_cfg);
  // Tune on the first half, evaluate on everything (deployment style:
  // admins feed back confirmed verdicts).
  for (std::size_t i = 0; i < data.size(); i += 2) {
    tuner.observe(features_of(data.row(i)),
                  data.label(i) == ml::kSybilLabel);
  }
  const auto tuned_cm =
      evaluate_rule(core::ThresholdDetector(tuner.retune()));
  std::printf("\n%s\n", tuned_cm.to_table("Threshold (tuned)").c_str());
  const auto& rule = tuner.rule();
  std::printf("tuned rule: accept < %.2f AND rate >= %.1f/hr AND cc < %.4f\n",
              rule.outgoing_accept_max, rule.invite_rate_min,
              rule.clustering_max);

  // --- Extension: logistic regression baseline. ---
  stats::Rng lr_rng(config.seed + 2);
  const ml::ConfusionMatrix logit_cm = ml::cross_validate(
      data, 5,
      [](const ml::Dataset& train) -> ml::Predictor {
        auto scaler = std::make_shared<ml::StandardScaler>();
        scaler->fit(train);
        auto model = std::make_shared<ml::LogisticModel>(
            ml::LogisticModel::train(scaler->transform(train),
                                     ml::LogisticParams{}));
        return [scaler, model](std::span<const double> row) {
          return model->predict(scaler->transform(row));
        };
      },
      lr_rng);
  std::printf("\n%s\n",
              logit_cm.to_table("Logistic regression (extension)").c_str());
  return 0;
}
