// Extension — structural diagnostics behind the paper's argument.
//
// The community-defense assumption has two measurable halves:
//   (1) the honest region mixes fast (lazy-walk spectral gap bounded
//       away from zero), and
//   (2) the Sybil region traps random walks (low escape probability).
// We measure both on a synthetic injected community and on the wild
// campaign's giant Sybil component, plus embedding diagnostics
// (k-cores, assortativity): wild Sybils sit in the same cores as
// normal users and their "region" leaks walks immediately.
#include <algorithm>

#include "bench_common.h"
#include "core/topology.h"
#include "graph/generators.h"
#include "graph/metrics.h"
#include "graph/mixing.h"
#include "stats/summary.h"

int main(int, char**) {
  using namespace sybil;
  bench::print_header("Extension — mixing & embedding diagnostics",
                      "synthetic: 30k honest + 3k injected; "
                      "wild: campaign at 30k/3k");

  // --- Synthetic injected community. ---
  stats::Rng rng(7);
  const auto honest = graph::osn_like_graph(
      {.nodes = 30'000, .mean_links = 12.0, .triadic_closure = 0.2,
       .pa_beta = 1.0},
      rng);
  const auto synthetic = graph::CsrGraph::from(
      graph::inject_sybil_community(honest, 3'000, 40.0 / 3'000.0, 60, rng));
  std::vector<graph::NodeId> synthetic_sybils;
  for (graph::NodeId v = 30'000; v < 33'000; ++v) {
    synthetic_sybils.push_back(v);
  }

  // --- Wild campaign. ---
  attack::CampaignConfig cfg;
  cfg.normal_users = 30'000;
  cfg.sybils = 3'000;
  cfg.campaign_hours = 12'000.0;
  const auto wild = attack::run_campaign(cfg);
  const core::TopologyAnalyzer topo(*wild.network, wild.sybil_ids);
  const auto& wild_g = topo.snapshot();
  const auto giant = topo.component_members(0);

  std::printf("\n%-34s %14s %14s\n", "quantity", "synthetic", "wild");

  // Escape probability of the Sybil region (20-step walks).
  stats::Rng wrng(9);
  const double esc_syn =
      graph::escape_probability(synthetic, synthetic_sybils, 20, 5'000, wrng);
  const double esc_wild =
      giant.empty() ? 1.0
                    : graph::escape_probability(wild_g, giant, 20, 5'000,
                                                wrng);
  std::printf("%-34s %13.1f%% %13.1f%%\n",
              "walk escape from Sybil region", 100.0 * esc_syn,
              100.0 * esc_wild);

  // Spectral gap of the honest substrate (identical generator).
  const double l2 =
      graph::lazy_walk_lambda2(graph::CsrGraph::from(honest), 150);
  std::printf("%-34s %14.4f %14s\n", "honest lazy-walk lambda2", l2,
              "(same)");

  // Degree assortativity of the combined graphs.
  std::printf("%-34s %14.3f %14.3f\n", "degree assortativity",
              graph::degree_assortativity(synthetic),
              graph::degree_assortativity(wild_g));

  // Core numbers: median core of Sybils vs normals.
  const auto median_core = [](const graph::CsrGraph& g,
                              const std::vector<graph::NodeId>& nodes) {
    const auto core = graph::core_numbers(g);
    std::vector<double> values;
    values.reserve(nodes.size());
    for (auto v : nodes) values.push_back(core[v]);
    return stats::median(values);
  };
  std::vector<graph::NodeId> synthetic_normals, wild_normals;
  for (graph::NodeId v = 0; v < 30'000; v += 10) {
    synthetic_normals.push_back(v);
  }
  for (std::size_t i = 0; i < wild.normal_ids.size(); i += 10) {
    wild_normals.push_back(wild.normal_ids[i]);
  }
  std::printf("%-34s %7.0f vs %-4.0f %7.0f vs %-4.0f\n",
              "median core: sybil vs normal",
              median_core(synthetic, synthetic_sybils),
              median_core(synthetic, synthetic_normals),
              median_core(wild_g, wild.sybil_ids),
              median_core(wild_g, wild_normals));

  std::printf(
      "\n# reading: the synthetic region traps walks (low escape) — the\n"
      "# precondition for every random-walk defense. The wild 'region'\n"
      "# leaks almost every walk on the first hops, while wild Sybils\n"
      "# embed in cores as deep as ordinary users: structurally, there\n"
      "# is nothing to cut out.\n");
  return 0;
}
