// Ablation 3 — honest-graph mixing structure.
//
// Community-based Sybil defenses assume the honest region is fast
// mixing. Real OSNs (Renren's school/city networks) are not: they have
// strong regional communities. This ablation runs trust propagation on
// *honest-only* graphs with increasing regional affinity, seeding trust
// in one region, and reports how many honest users in remote regions a
// structural detector would sacrifice — collateral damage that exists
// even before a single Sybil signs up.
#include "bench_common.h"

#include "detectors/sybilrank.h"
#include "graph/conductance.h"
#include "graph/generators.h"
#include "stats/summary.h"

int main(int, char**) {
  using namespace sybil;
  bench::print_header(
      "Ablation — regional structure vs trust propagation",
      "40k honest users, 8 regions, trust seeded in region 0 only");

  std::printf("%-22s %16s %22s %20s\n", "affinity", "modularity",
              "home-region rejected", "remote rejected");
  for (double affinity : {0.0, 0.5, 0.8, 0.95}) {
    graph::OsnGraphParams params{.nodes = 40'000,
                                 .mean_links = 10.0,
                                 .triadic_closure = 0.2,
                                 .pa_beta = 1.0,
                                 .communities = 8,
                                 .community_affinity = affinity};
    stats::Rng rng(77);
    const auto g = graph::CsrGraph::from(osn_like_graph(params, rng));

    std::vector<std::uint32_t> labels(g.node_count());
    for (graph::NodeId v = 0; v < g.node_count(); ++v) {
      labels[v] = community_of(v, params);
    }
    const double q = graph::modularity(g, labels);

    // Seeds: 30 verified users, all in region 0.
    std::vector<graph::NodeId> seeds;
    for (graph::NodeId i = 0; i < 30; ++i) {
      seeds.push_back(i * 8);  // community_of == 0 under round-robin
    }
    const auto scores = detect::sybilrank_scores(g, seeds);

    // Rejection threshold: bottom 10% of ALL scores (a platform culling
    // its lowest-trust decile).
    std::vector<double> sorted(scores);
    std::sort(sorted.begin(), sorted.end());
    const double cut = sorted[sorted.size() / 10];
    std::uint64_t home = 0, home_rejected = 0;
    std::uint64_t remote = 0, remote_rejected = 0;
    for (graph::NodeId v = 0; v < g.node_count(); ++v) {
      if (labels[v] == 0) {
        ++home;
        home_rejected += scores[v] < cut;
      } else {
        ++remote;
        remote_rejected += scores[v] < cut;
      }
    }
    std::printf("%-22.2f %16.3f %19.1f%% %19.1f%%\n", affinity, q,
                100.0 * static_cast<double>(home_rejected) /
                    static_cast<double>(home),
                100.0 * static_cast<double>(remote_rejected) /
                    static_cast<double>(remote));
  }
  std::printf(
      "\n# reading: as regional affinity grows, the bottom-trust decile\n"
      "# concentrates on honest users who merely live far from the seeds\n"
      "# — structural defenses pay this cost before any Sybil exists.\n");
  return 0;
}
