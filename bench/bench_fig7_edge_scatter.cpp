// Figure 7: scatter of Sybil edges vs attack edges per Sybil component.
// Paper: every component lies above the y = x line — more attack edges
// than Sybil edges — so none is detectable by community-based defenses.
#include "bench_common.h"
#include "core/topology.h"
#include "graph/conductance.h"

int main(int argc, char** argv) {
  using namespace sybil;
  const auto config = bench::campaign_config(argc, argv);
  bench::print_header("Figure 7 — Sybil edges vs attack edges per component",
                      bench::describe(config));
  const auto result = attack::run_campaign(config);
  const core::TopologyAnalyzer topo(*result.network, result.sybil_ids);

  std::printf("# scatter rows: sybil_edges<TAB>attack_edges\n");
  std::size_t above = 0;
  const auto& stats = topo.component_stats();
  for (const auto& cs : stats) {
    std::printf("%llu\t%llu\n",
                static_cast<unsigned long long>(cs.sybil_edges),
                static_cast<unsigned long long>(cs.attack_edges));
    above += cs.attack_edges > cs.sybil_edges;
  }
  std::printf("\n# headline numbers (paper value in brackets)\n");
  std::printf("Components above the y=x line: %zu of %zu = %.1f%%  [100%%]\n",
              above, stats.size(),
              stats.empty() ? 0.0
                            : 100.0 * static_cast<double>(above) /
                                  static_cast<double>(stats.size()));

  // Conductance of the giant component — the quantity community-based
  // detection needs to be SMALL.
  if (!stats.empty()) {
    const auto members = topo.component_members(0);
    const auto cut = graph::cut_stats(topo.snapshot(), members);
    std::printf("Giant component conductance: %.3f "
                "(detectable regions need << 0.5)\n",
                cut.conductance(graph::total_volume(topo.snapshot())));
  }
  return 0;
}
