#include "runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "core/metrics/instrument.h"
#include "core/stream_detector.h"
#include "service/router.h"
#include "service/supervisor.h"
#include "graph/generators.h"
#include "io/container.h"
#include "stats/rng.h"

#if SYBIL_METRICS_COMPILED
#include "core/metrics/metrics.h"
#endif

namespace sybil::bench {

GroundTruthLab::GroundTruthLab(osn::GroundTruthConfig config)
    : sim_(std::move(config)) {
  sim_.run();
}

const core::FeatureColumns& GroundTruthLab::normal_columns() {
  if (!normal_) {
    normal_ = core::feature_columns(sim_.network(), sim_.subject_normals());
  }
  return *normal_;
}

const core::FeatureColumns& GroundTruthLab::sybil_columns() {
  if (!sybil_) {
    sybil_ = core::feature_columns(sim_.network(), sim_.subject_sybils());
  }
  return *sybil_;
}

namespace {

/// The standard seed/sample picks shared by both scenario builders —
/// the same index arithmetic the defense bench has always used, so
/// series stay comparable across PRs.
void pick_seeds_and_sample(DefenseScenario& s,
                           const std::vector<graph::NodeId>& normal_ids,
                           const std::vector<graph::NodeId>& sybil_ids) {
  for (std::size_t i = 0; i < 50; ++i) {
    s.honest_seeds.push_back(normal_ids[(i * 997 + 13) % normal_ids.size()]);
  }
  std::vector<graph::NodeId> honest_sample, sybil_sample;
  for (std::size_t i = 0; i < 300; ++i) {
    honest_sample.push_back(normal_ids[(i * 131 + 7) % normal_ids.size()]);
    sybil_sample.push_back(sybil_ids[(i * 17) % sybil_ids.size()]);
  }
  // Deduplicate but keep the honest-then-sybil order deterministic.
  auto dedup = [](std::vector<graph::NodeId>& v) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  };
  dedup(honest_sample);
  dedup(sybil_sample);
  s.eval_sample.reserve(honest_sample.size() + sybil_sample.size());
  s.eval_sample.insert(s.eval_sample.end(), honest_sample.begin(),
                       honest_sample.end());
  s.eval_sample.insert(s.eval_sample.end(), sybil_sample.begin(),
                       sybil_sample.end());
}

}  // namespace

DefenseScenario synthetic_scenario(graph::NodeId honest, graph::NodeId sybils,
                                   std::uint64_t attack_edges,
                                   std::uint64_t seed) {
  stats::Rng rng(seed);
  const auto base = graph::osn_like_graph(
      {.nodes = honest, .mean_links = 12.0, .triadic_closure = 0.2,
       .pa_beta = 1.0},
      rng);
  // The classic setting: a dense Sybil region (internal degree ~40)
  // behind a SMALL attack-edge cut — "normal users are unlikely to
  // accept requests from unknown strangers".
  const auto combined = graph::inject_sybil_community(
      base, sybils, std::min(0.5, 40.0 / sybils), attack_edges, rng);
  DefenseScenario s;
  s.name = "SYNTHETIC (injected community)";
  s.g = graph::CsrGraph::from(combined);
  s.is_sybil.assign(honest + sybils, false);
  for (graph::NodeId v = honest; v < honest + sybils; ++v) s.is_sybil[v] = true;
  std::vector<graph::NodeId> normal_ids(honest), sybil_ids(sybils);
  for (graph::NodeId v = 0; v < honest; ++v) normal_ids[v] = v;
  for (graph::NodeId v = 0; v < sybils; ++v) sybil_ids[v] = honest + v;
  pick_seeds_and_sample(s, normal_ids, sybil_ids);
  return s;
}

DefenseScenario scenario_from_campaign(const attack::CampaignResult& result) {
  DefenseScenario s;
  s.name = "WILD (campaign simulator)";
  s.g = graph::CsrGraph::from(result.network->graph());
  s.is_sybil.assign(s.g.node_count(), false);
  for (graph::NodeId v : result.sybil_ids) s.is_sybil[v] = true;
  pick_seeds_and_sample(s, result.normal_ids, result.sybil_ids);
  return s;
}

DefenseScenario campaign_scenario(const attack::CampaignConfig& config) {
  return scenario_from_campaign(attack::run_campaign(config));
}

namespace {

// Scenario container sections (docs/FORMATS.md §Scenario).
constexpr std::uint32_t kSecMeta = 1;
constexpr std::uint32_t kSecName = 2;
constexpr std::uint32_t kSecOffsets = 3;
constexpr std::uint32_t kSecTargets = 4;
constexpr std::uint32_t kSecIsSybil = 5;
constexpr std::uint32_t kSecHonestSeeds = 6;
constexpr std::uint32_t kSecEvalSample = 7;

}  // namespace

void save_scenario(const DefenseScenario& scenario, const std::string& path) {
  SYBIL_METRIC_SCOPED_TIMER(span, "bench.scenario.save");
  io::ContainerWriter writer(io::PayloadKind::kDefenseScenario);
  {
    io::ByteWriter w;
    w.write<std::uint64_t>(scenario.g.node_count());
    w.write<std::uint64_t>(scenario.g.targets().size());
    w.write<std::uint64_t>(scenario.honest_seeds.size());
    w.write<std::uint64_t>(scenario.eval_sample.size());
    w.write<std::uint64_t>(scenario.name.size());
    writer.add_section(kSecMeta, std::move(w).take());
  }
  {
    std::vector<std::byte> name(scenario.name.size());
    std::memcpy(name.data(), scenario.name.data(), scenario.name.size());
    writer.add_section(kSecName, std::move(name));
  }
  writer.add_pod_section<std::uint64_t>(kSecOffsets, scenario.g.offsets());
  writer.add_pod_section<graph::NodeId>(kSecTargets, scenario.g.targets());
  {
    std::vector<std::uint8_t> labels(scenario.is_sybil.size());
    for (std::size_t i = 0; i < labels.size(); ++i) {
      labels[i] = scenario.is_sybil[i] ? 1 : 0;
    }
    writer.add_pod_section<std::uint8_t>(kSecIsSybil, labels);
  }
  writer.add_pod_section<graph::NodeId>(kSecHonestSeeds,
                                        scenario.honest_seeds);
  writer.add_pod_section<graph::NodeId>(kSecEvalSample, scenario.eval_sample);
  writer.commit(path);
}

DefenseScenario load_scenario(const std::string& path) {
  SYBIL_METRIC_SCOPED_TIMER(span, "bench.scenario.load");
  auto reader = std::make_shared<io::ContainerReader>(
      path, io::PayloadKind::kDefenseScenario);

  io::ByteReader meta(reader->section(kSecMeta));
  const auto nodes = meta.read<std::uint64_t>();
  const auto half_edges = meta.read<std::uint64_t>();
  const auto honest = meta.read<std::uint64_t>();
  const auto eval = meta.read<std::uint64_t>();
  const auto name_len = meta.read<std::uint64_t>();
  if (!meta.exhausted()) {
    throw io::SnapshotError(io::SnapshotErrorCode::kMalformedSection,
                            "scenario meta has trailing bytes");
  }

  const auto offsets = reader->pod_section<std::uint64_t>(kSecOffsets);
  const auto targets = reader->pod_section<graph::NodeId>(kSecTargets);
  const auto labels = reader->pod_section<std::uint8_t>(kSecIsSybil);
  const auto seeds = reader->pod_section<graph::NodeId>(kSecHonestSeeds);
  const auto sample = reader->pod_section<graph::NodeId>(kSecEvalSample);
  const auto name = reader->section(kSecName);
  if (offsets.size() != nodes + 1 || targets.size() != half_edges ||
      labels.size() != nodes || seeds.size() != honest ||
      sample.size() != eval || name.size() != name_len) {
    throw io::SnapshotError(io::SnapshotErrorCode::kMalformedSection,
                            "scenario sections inconsistent with meta");
  }
  if (offsets.front() != 0 || offsets.back() != targets.size() ||
      !std::is_sorted(offsets.begin(), offsets.end())) {
    throw io::SnapshotError(io::SnapshotErrorCode::kFormatViolation,
                            "scenario CSR offsets not a valid offset array");
  }
  for (const graph::NodeId t : targets) {
    if (t >= nodes) {
      throw io::SnapshotError(io::SnapshotErrorCode::kFormatViolation,
                              "scenario CSR target out of range");
    }
  }
  const auto in_range = [nodes](std::span<const graph::NodeId> ids) {
    for (const graph::NodeId v : ids) {
      if (v >= nodes) return false;
    }
    return true;
  };
  if (!in_range(seeds) || !in_range(sample)) {
    throw io::SnapshotError(io::SnapshotErrorCode::kFormatViolation,
                            "scenario seed/sample node id out of range");
  }
  for (const std::uint8_t b : labels) {
    if (b > 1) {
      throw io::SnapshotError(io::SnapshotErrorCode::kFormatViolation,
                              "scenario label byte out of range");
    }
  }

  DefenseScenario s;
  s.name.assign(reinterpret_cast<const char*>(name.data()), name.size());
  // The reader (and its mapping) stays alive as the view's backing.
  s.g = graph::CsrGraph::view(offsets, targets, reader);
  s.is_sybil.resize(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    s.is_sybil[i] = labels[i] != 0;
  }
  s.honest_seeds.assign(seeds.begin(), seeds.end());
  s.eval_sample.assign(sample.begin(), sample.end());
  return s;
}

std::vector<DefenseRun> run_battery(const DefenseScenario& scenario,
                                    const BatteryOptions& options) {
  SYBIL_METRIC_SCOPED_TIMER(span, "bench.run_battery");
  const std::vector<std::string> names = options.defenses.empty()
                                             ? detect::DefenseRegistry::names()
                                             : options.defenses;
  std::vector<DefenseRun> runs;
  runs.reserve(names.size());
  for (const std::string& name : names) {
    const auto defense = detect::DefenseRegistry::create(name, options.tuning);
    DefenseRun run;
    run.defense = name;
    run.determinism = defense->determinism();
    run.sampled = std::find(options.sampled_defenses.begin(),
                            options.sampled_defenses.end(),
                            name) != options.sampled_defenses.end();

    detect::DefenseContext ctx;
    ctx.honest_seeds = scenario.honest_seeds;
    if (run.sampled) ctx.eval_nodes = scenario.eval_sample;

    const auto start = std::chrono::steady_clock::now();
    const std::vector<double> scores = defense->score(scenario.g, ctx);
    const auto stop = std::chrono::steady_clock::now();
    run.millis =
        std::chrono::duration<double, std::milli>(stop - start).count();

    run.metrics = detect::evaluate_scores(
        scores, scenario.is_sybil,
        run.sampled ? std::span<const graph::NodeId>(scenario.eval_sample)
                    : std::span<const graph::NodeId>{});
    runs.push_back(std::move(run));
  }
  return runs;
}

void print_battery(const DefenseScenario& scenario,
                   const std::vector<DefenseRun>& runs) {
  std::printf("\n--- %s: %u nodes, %llu edges ---\n", scenario.name.c_str(),
              scenario.g.node_count(),
              static_cast<unsigned long long>(scenario.g.edge_count()));
  std::printf("%-18s %-7s %-11s %8s %14s %15s\n", "defense", "det", "scope",
              "AUC", "sybil rejected", "honest rejected");
  for (const DefenseRun& run : runs) {
    char scope[24];
    if (run.sampled) {
      std::snprintf(scope, sizeof(scope), "sample-%zu",
                    scenario.eval_sample.size());
    } else {
      std::snprintf(scope, sizeof(scope), "all");
    }
    std::printf("%-18s %-7s %-11s %8.3f %13.1f%% %14.1f%%\n",
                run.defense.c_str(),
                std::string(detect::to_string(run.determinism)).c_str(), scope,
                run.metrics.auc, 100.0 * run.metrics.sybil_rejection,
                100.0 * run.metrics.honest_rejection);
  }
  // Wall-clock block: comment lines, and suppressible, so the metric
  // rows above stay byte-identical across machines and thread counts.
  const char* timing_env = std::getenv("SYBIL_BENCH_TIMING");
  if (timing_env == nullptr || std::strcmp(timing_env, "off") != 0) {
    std::printf("# timing (wall-clock ms; not byte-stable):\n");
    for (const DefenseRun& run : runs) {
      std::printf("# timing: %-18s %10.1f\n", run.defense.c_str(), run.millis);
    }
  }
  print_metrics_block();
}

namespace {

/// Precision/recall of a flag set against ground-truth labels.
void score_flags(const core::FlagBatch& flags,
                 const std::vector<bool>& is_sybil, std::size_t& count,
                 double& precision, double& recall) {
  std::size_t true_pos = 0;
  for (const core::FlagRecord& r : flags.records) {
    if (r.account < is_sybil.size() && is_sybil[r.account]) ++true_pos;
  }
  std::size_t sybils = 0;
  for (const bool b : is_sybil) sybils += b ? 1 : 0;
  count = flags.size();
  precision = count == 0 ? 1.0 : static_cast<double>(true_pos) / count;
  recall = sybils == 0 ? 1.0 : static_cast<double>(true_pos) / sybils;
}

}  // namespace

ChaosRun run_chaos(const osn::EventLog& log,
                   const std::vector<bool>& is_sybil,
                   const core::DetectorOptions& options,
                   const faults::FaultRates& rates) {
  SYBIL_METRIC_SCOPED_TIMER(span, "bench.run_chaos");
  ChaosRun run;
  // The watermark must absorb the log's own inversions (responses are
  // logged behind later sends) plus whatever skew the injector adds —
  // twice over, because a duplicate's redelivery delay compounds on its
  // original's reorder delay.
  core::DetectorOptions opts = options;
  opts.ingest.watermark_hours =
      log.max_inversion_hours() + 2.0 * rates.max_skew_hours;
  run.watermark_hours = opts.ingest.watermark_hours;

  core::StreamDetector clean(opts);
  const auto& events = log.events();
  for (std::size_t i = 0; i < events.size(); ++i) clean.ingest(events[i], i);
  clean.finish();
  if (clean.deadletter_total() != 0) {
    throw std::logic_error(
        "run_chaos: clean pass quarantined events — watermark too small "
        "or log malformed");
  }
  const core::FlagBatch clean_flags = clean.take_flagged();
  score_flags(clean_flags, is_sybil, run.clean_flagged, run.clean_precision,
              run.clean_recall);

  faults::FaultInjector injector(rates);
  const std::vector<faults::Arrival> arrivals = injector.corrupt(log);
  run.report = injector.report();

  core::StreamDetector faulted(opts);
  for (const faults::Arrival& a : arrivals) faulted.ingest(a.event, a.seq);
  faulted.finish();
  const core::FlagBatch faulted_flags = faulted.take_flagged();
  score_flags(faulted_flags, is_sybil, run.faulted_flagged,
              run.faulted_precision, run.faulted_recall);
  run.applied = faulted.applied_total();
  run.deduped = faulted.deduped_total();
  run.deadlettered = faulted.deadletter_total();
  run.banned_party = faulted.banned_party_total();
  return run;
}

void print_chaos(const ChaosRun& run) {
  std::printf(
      "\n--- CHAOS (clean vs faulted ingestion, watermark %.1f h) ---\n",
      run.watermark_hours);
  std::printf(
      "# faults: in=%llu out=%llu dropped=%llu reordered=%llu "
      "duplicated=%llu regressed=%llu malformed=%llu banned_party=%llu\n",
      static_cast<unsigned long long>(run.report.events_in),
      static_cast<unsigned long long>(run.report.events_out),
      static_cast<unsigned long long>(run.report.dropped),
      static_cast<unsigned long long>(run.report.reordered),
      static_cast<unsigned long long>(run.report.duplicated),
      static_cast<unsigned long long>(run.report.regressed),
      static_cast<unsigned long long>(run.report.malformed),
      static_cast<unsigned long long>(run.report.banned_party_injected));
  std::printf(
      "# ingest: applied=%llu deduped=%llu deadletter=%llu "
      "banned_party=%llu\n",
      static_cast<unsigned long long>(run.applied),
      static_cast<unsigned long long>(run.deduped),
      static_cast<unsigned long long>(run.deadlettered),
      static_cast<unsigned long long>(run.banned_party));
  std::printf("%-8s %10s %10s %8s\n", "pass", "flagged", "precision",
              "recall");
  std::printf("%-8s %10zu %10.3f %8.3f\n", "clean", run.clean_flagged,
              run.clean_precision, run.clean_recall);
  std::printf("%-8s %10zu %10.3f %8.3f\n", "faulted", run.faulted_flagged,
              run.faulted_precision, run.faulted_recall);
  std::printf("%-8s %10lld %10.3f %8.3f\n", "delta",
              static_cast<long long>(run.faulted_flagged) -
                  static_cast<long long>(run.clean_flagged),
              run.faulted_precision - run.clean_precision,
              run.faulted_recall - run.clean_recall);
}

CrashRecoveryRun run_crash_recovery(const osn::EventLog& log,
                                    const std::vector<bool>& is_sybil,
                                    const core::DetectorOptions& options,
                                    std::uint64_t crash_every,
                                    std::uint64_t shards) {
  SYBIL_METRIC_SCOPED_TIMER(span, "bench.run_crash_recovery");
  if (crash_every == 0) {
    throw std::invalid_argument("run_crash_recovery: crash_every must be >= 1");
  }
  if (shards == 0) {
    throw std::invalid_argument("run_crash_recovery: shards must be >= 1");
  }
  namespace fs = std::filesystem;
  const auto& events = log.events();
  CrashRecoveryRun run;
  run.crash_every = crash_every;
  run.shards = shards;
  run.events = events.size();

  core::DetectorOptions opts = options;
  opts.ingest.watermark_hours = log.max_inversion_hours();
  // The comparison pins verdict equality, so neither pass may shed:
  // shedding decisions depend on the pump schedule, which a crash
  // legitimately perturbs. Both passes pump continuously instead.
  opts.overload.queue_capacity = events.size() + 2;
  opts.overload.sweep_only_watermark = events.size() + 1;
  opts.overload.shed_watermark = events.size() + 1;
  opts.overload.resume_watermark = 0;

  service::ServiceOptions service_opts;
  service_opts.detector = opts;
  service_opts.wal_fsync = service::WalFsync::kNever;  // throwaway state
  // Deliberately misaligned with crash_every so crashes land between
  // checkpoints and every recovery exercises real WAL-suffix replay.
  service_opts.checkpoint_every = crash_every / 2 + 1;
  const std::string root =
      (fs::temp_directory_path() / "sybil_bench_crash").string();
  fs::remove_all(root);

  if (shards > 1) {
    // Sharded variant: both passes through an N-way router, every kill
    // takes the whole fleet down, and each recovery resumes from the
    // min-frontier across shards (redelivered copies below a shard's
    // own frontier are suppressed, so per-shard WALs stay exactly-once).
    service::ShardRouterOptions router_opts;
    router_opts.shard = service_opts;
    router_opts.shards = static_cast<std::uint32_t>(shards);
    {
      router_opts.shard.dir = root + "/clean";
      service::ShardRouter clean(router_opts);
      clean.start();
      for (std::uint64_t i = 0; i < events.size(); ++i) {
        clean.offer(events[i], i);
        if (i % 1024 == 1023) clean.pump();
      }
      clean.flush();
      score_flags(clean.take_flagged(), is_sybil, run.clean_flagged,
                  run.clean_precision, run.clean_recall);
    }

    router_opts.shard.dir = root + "/crash";
    std::uint64_t next = 0;
    bool finished = false;
    while (!finished) {
      service::ShardRouter s(router_opts);
      const auto t0 = std::chrono::steady_clock::now();
      const service::RouterRecoveryReport report = s.start();
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
      if (next != 0) {
        run.recovery_total_ms += ms;
        run.recovery_max_ms = std::max(run.recovery_max_ms, ms);
        for (const auto& shard_report : report.shards) {
          run.records_replayed += shard_report.records_replayed;
        }
      }
      next = report.next_seq;
      const std::uint64_t stop =
          std::min<std::uint64_t>(events.size(), next + crash_every);
      for (; next < stop; ++next) {
        s.offer(events[next], next);
        if (next % 1024 == 1023) s.pump();
      }
      if (stop == events.size()) {
        s.flush();
        score_flags(s.take_flagged(), is_sybil, run.recovered_flagged,
                    run.recovered_precision, run.recovered_recall);
        finished = true;
      } else {
        ++run.crashes;
      }
    }
    fs::remove_all(root);

    if (run.recovered_flagged != run.clean_flagged ||
        run.recovered_precision != run.clean_precision ||
        run.recovered_recall != run.clean_recall) {
      throw std::logic_error(
          "run_crash_recovery: sharded recovered verdicts differ from "
          "the uninterrupted run — exactly-once recovery is broken");
    }
    return run;
  }

  {
    service_opts.dir = root + "/clean";
    service::ServiceSupervisor clean(service_opts);
    clean.start();
    for (std::uint64_t i = 0; i < events.size(); ++i) {
      clean.offer(events[i], i);
      if (i % 1024 == 1023) clean.pump();
    }
    clean.flush();
    score_flags(clean.take_flagged(), is_sybil, run.clean_flagged,
                run.clean_precision, run.clean_recall);
  }

  service_opts.dir = root + "/crash";
  std::uint64_t next = 0;
  bool finished = false;
  while (!finished) {
    // A fresh supervisor per life: the previous one was dropped with no
    // flush and no warning — the WAL + checkpoints are all that's left.
    service::ServiceSupervisor s(service_opts);
    const auto t0 = std::chrono::steady_clock::now();
    const service::RecoveryReport report = s.start();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (next != 0) {  // the first start is a cold boot, not a recovery
      run.recovery_total_ms += ms;
      run.recovery_max_ms = std::max(run.recovery_max_ms, ms);
      run.records_replayed += report.records_replayed;
    }
    next = report.next_index;
    const std::uint64_t stop =
        std::min<std::uint64_t>(events.size(), next + crash_every);
    for (; next < stop; ++next) {
      s.offer(events[next], next);
      if (next % 1024 == 1023) s.pump();
    }
    if (stop == events.size()) {
      s.flush();
      score_flags(s.take_flagged(), is_sybil, run.recovered_flagged,
                  run.recovered_precision, run.recovered_recall);
      finished = true;
    } else {
      ++run.crashes;
    }
  }
  fs::remove_all(root);

  if (run.recovered_flagged != run.clean_flagged ||
      run.recovered_precision != run.clean_precision ||
      run.recovered_recall != run.clean_recall) {
    throw std::logic_error(
        "run_crash_recovery: recovered verdicts differ from the "
        "uninterrupted run — exactly-once recovery is broken");
  }
  return run;
}

void print_crash_recovery(const CrashRecoveryRun& run) {
  std::printf(
      "\n--- CRASH RECOVERY (kill + recover every %llu events, %llu "
      "shard%s) ---\n",
      static_cast<unsigned long long>(run.crash_every),
      static_cast<unsigned long long>(run.shards),
      run.shards == 1 ? "" : "s");
  std::printf("# service: events=%llu crashes=%llu wal_replayed=%llu\n",
              static_cast<unsigned long long>(run.events),
              static_cast<unsigned long long>(run.crashes),
              static_cast<unsigned long long>(run.records_replayed));
  const char* timing_env = std::getenv("SYBIL_BENCH_TIMING");
  if ((timing_env == nullptr || std::strcmp(timing_env, "off") != 0) &&
      run.crashes > 0) {
    std::printf(
        "# timing: %llu recoveries in %.1f ms (mean %.2f ms, max %.2f "
        "ms)\n",
        static_cast<unsigned long long>(run.crashes),
        run.recovery_total_ms,
        run.recovery_total_ms / static_cast<double>(run.crashes),
        run.recovery_max_ms);
  }
  std::printf("%-10s %10s %10s %8s\n", "pass", "flagged", "precision",
              "recall");
  std::printf("%-10s %10zu %10.3f %8.3f\n", "clean", run.clean_flagged,
              run.clean_precision, run.clean_recall);
  std::printf("%-10s %10zu %10.3f %8.3f\n", "recovered",
              run.recovered_flagged, run.recovered_precision,
              run.recovered_recall);
  std::printf("%-10s %10lld %10.3f %8.3f\n", "delta",
              static_cast<long long>(run.recovered_flagged) -
                  static_cast<long long>(run.clean_flagged),
              run.recovered_precision - run.clean_precision,
              run.recovered_recall - run.clean_recall);
}

void print_metrics_block() {
#if SYBIL_METRICS_COMPILED
  // Observability dump as comment lines only: measurement rows above
  // stay byte-identical whether metrics are on (extra # lines) or off
  // via SYBIL_METRICS=off (no lines at all). Wall-clock fields are
  // excluded so even the # metrics lines are byte-stable across
  // SYBIL_THREADS — wall-clock belongs to the # timing block.
  if (!core::metrics::metrics_enabled()) return;
  const std::string text = core::metrics::MetricsRegistry::instance().to_text(
      /*include_wallclock=*/false);
  std::printf("# metrics (SYBIL_METRICS=off to suppress):\n");
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    std::printf("# metrics: %.*s\n", static_cast<int>(end - start),
                text.c_str() + start);
    start = end + 1;
  }
#endif
}

}  // namespace sybil::bench
