// Extension — countermeasure evaluation: platform-wide invitation rate
// caps, the obvious defense the paper's frequency feature (Fig 1)
// suggests. Two attacker models per cap:
//   naive    — the tools keep bursting; requests over the cap are lost;
//   adaptive — the tools throttle to the cap and spend their (finite)
//              active lifetime instead.
// Reported: total attack edges (harm proxy), distinct victims, and the
// accidental Sybil-edge volume.
#include "bench_common.h"
#include "core/topology.h"

int main(int, char**) {
  using namespace sybil;
  bench::print_header("Extension — platform invitation rate caps",
                      "campaigns at 30k users / 3k Sybils / 12k h");

  attack::CampaignConfig base;
  base.normal_users = 30'000;
  base.sybils = 3'000;
  base.campaign_hours = 12'000.0;

  std::printf("%-26s %14s %16s %13s\n", "variant", "attack edges",
              "distinct victims", "Sybil edges");
  const auto run = [&](const char* label, std::uint32_t cap, bool adapts) {
    attack::CampaignConfig cfg = base;
    cfg.platform_rate_cap = cap;
    cfg.attacker_adapts = adapts;
    cfg.seed = 900 + cap + (adapts ? 1 : 0);
    const auto result = attack::run_campaign(cfg);
    const core::TopologyAnalyzer topo(*result.network, result.sybil_ids);
    // Distinct victims = union of component audiences + isolated-Sybil
    // neighbors; count directly.
    std::vector<bool> victim(result.network->account_count(), false);
    std::uint64_t victims = 0;
    const auto& g = result.network->graph();
    for (auto s : result.sybil_ids) {
      for (const auto& nb : g.neighbors(s)) {
        if (!result.network->account(nb.node).is_sybil() &&
            !victim[nb.node]) {
          victim[nb.node] = true;
          ++victims;
        }
      }
    }
    std::printf("%-26s %14llu %16llu %13llu\n", label,
                static_cast<unsigned long long>(topo.total_attack_edges()),
                static_cast<unsigned long long>(victims),
                static_cast<unsigned long long>(topo.total_sybil_edges()));
  };

  run("no cap", 0, false);
  for (std::uint32_t cap : {40u, 20u, 10u, 5u}) {
    char label[48];
    std::snprintf(label, sizeof(label), "cap %u/hr, naive tool", cap);
    run(label, cap, false);
    std::snprintf(label, sizeof(label), "cap %u/hr, adaptive tool", cap);
    run(label, cap, true);
  }
  std::printf(
      "\n# reading: rate caps hurt bursty naive tools, but an adaptive\n"
      "# attacker recovers most of the harm by spreading requests over\n"
      "# the account's lifetime — rate limits alone do not stop Sybils,\n"
      "# they only slow them down (and push rates under the Fig 1\n"
      "# detection threshold, making behavioral detection harder).\n");
  return 0;
}
