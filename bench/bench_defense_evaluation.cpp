// Section 3.1 headline claim: community-based Sybil defenses, validated
// on synthetic graphs with injected tight-knit Sybil regions, fail on
// Sybils as they occur in the wild.
//
// Two graphs, the full registered defense battery:
//   SYNTHETIC — honest OSN-like graph + injected dense Sybil community
//               behind a small attack-edge cut (the prior-work setting);
//   WILD      — the campaign simulator's output, where Sybils integrate
//               into the social graph via accepted stranger requests.
// Every defense runs through the shared SybilDefense registry and one
// bench::run_battery invocation per scenario emits the combined
// timing + DefenseMetrics table (AUC and rejection at a 5% honest
// false-rejection budget). The paper's prediction: high on SYNTHETIC,
// chance-level on WILD — with the paper's own clustering signal the
// one ranker that flips the other way.
#include <chrono>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "chaos/manifest.h"
#include "chaos/orchestrator.h"
#include "runner.h"

namespace {

constexpr char kUsage[] =
    "[--save-graph <path>] [--load-graph <path>] "
    "[--chaos-seed <n>] [--chaos-rate <r>] [--chaos-skew <hours>] "
    "[--crash-every <n>] [--shards <n>] "
    "[--scenario <manifest[,manifest...]>] "
    "[normal_users] [sybils] [campaign_hours]";

/// Extracts "--flag <value>" from argv, compacting the remaining
/// positional arguments in place. Returns the value or "".
std::string take_flag(int& argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) != 0) continue;
    if (i + 1 >= argc) {
      sybil::bench::usage_error(argv[0], kUsage, flag,
                                "flag (missing value)");
    }
    std::string value = argv[i + 1];
    for (int j = i; j + 2 < argc; ++j) argv[j] = argv[j + 2];
    argc -= 2;
    return value;
  }
  return {};
}

/// `--scenario` battery: runs each chaos manifest through the
/// orchestrator (with the undisturbed control and byte-identity check
/// when the manifest promises it) and prints one row per scenario.
/// Early-exits the binary — the defense battery is a different lab.
int run_scenario_battery(const std::string& list) {
  namespace fs = std::filesystem;
  const std::string root =
      (fs::temp_directory_path() / "sybil_bench_scenarios").string();
  std::printf("# chaos scenario battery (docs/ROBUSTNESS.md §Scenario "
              "harness)\n");
  std::printf("%-32s %10s %10s %6s %6s %9s %10s\n", "scenario", "events",
              "arrivals", "kills", "recov", "identity", "ms");
  bool all_ok = true;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::string path = list.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    start = comma == std::string::npos ? list.size() + 1 : comma + 1;
    if (path.empty()) continue;
    sybil::chaos::ScenarioManifest manifest;
    try {
      manifest = sybil::chaos::load_manifest(path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "scenario %s: %s\n", path.c_str(), e.what());
      return 2;
    }
    const auto t0 = std::chrono::steady_clock::now();
    sybil::chaos::ScenarioOutcome outcome;
    const char* verdict = "n/a";
    if (manifest.identity_expected()) {
      const sybil::chaos::IdentityVerdict v = sybil::chaos::verify_identity(
          manifest, root + "/" + manifest.name, &outcome);
      verdict = v.ok() ? "ok" : "FAIL";
      all_ok = all_ok && v.ok();
    } else {
      sybil::chaos::ChaosOrchestrator orchestrator(manifest);
      sybil::chaos::ChaosRunOptions run;
      run.dir = root + "/" + manifest.name + "/disturbed";
      outcome = orchestrator.run(run);
      verdict = outcome.identity_failures == 0 ? "acct-ok" : "FAIL";
      all_ok = all_ok && outcome.identity_failures == 0;
    }
    const auto t1 = std::chrono::steady_clock::now();
    std::printf("%-32s %10llu %10llu %6llu %6llu %9s %10.1f\n",
                manifest.name.c_str(),
                static_cast<unsigned long long>(manifest.workload.events),
                static_cast<unsigned long long>(outcome.arrivals_total),
                static_cast<unsigned long long>(outcome.kills),
                static_cast<unsigned long long>(outcome.recoveries), verdict,
                std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  return all_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sybil;
  const std::string save_path = take_flag(argc, argv, "--save-graph");
  const std::string load_path = take_flag(argc, argv, "--load-graph");
  const std::string chaos_seed = take_flag(argc, argv, "--chaos-seed");
  const std::string chaos_rate = take_flag(argc, argv, "--chaos-rate");
  const std::string chaos_skew = take_flag(argc, argv, "--chaos-skew");
  const std::string crash_every_arg = take_flag(argc, argv, "--crash-every");
  const std::string shards_arg = take_flag(argc, argv, "--shards");
  if (const std::string scenarios = take_flag(argc, argv, "--scenario");
      !scenarios.empty()) {
    return run_scenario_battery(scenarios);
  }
  const bool chaos =
      !chaos_seed.empty() || !chaos_rate.empty() || !chaos_skew.empty();
  if ((chaos || !crash_every_arg.empty()) && !load_path.empty()) {
    // Scenario snapshots persist only the graph; the chaos and
    // crash-recovery passes need the campaign's event log, which only a
    // fresh simulation carries.
    bench::usage_error(argv[0], kUsage, "--chaos-*/--crash-every",
                       "flag (incompatible with --load-graph)");
  }
  const std::uint64_t crash_every =
      crash_every_arg.empty()
          ? 0
          : bench::parse_count(argv[0], kUsage, crash_every_arg.c_str(),
                               "crash-every event count",
                               ~std::uint64_t{0});
  // Shard count for the crash-recovery pass: >1 routes both passes
  // through the N-way ShardRouter (whole-fleet kills, min-frontier
  // resume) instead of a single supervisor.
  const std::uint64_t shards =
      shards_arg.empty()
          ? 1
          : bench::parse_count(argv[0], kUsage, shards_arg.c_str(),
                               "shard count", 1024);
  if (shards == 0) {
    bench::usage_error(argv[0], kUsage, "--shards", "flag (must be >= 1)");
  }

  bench::print_header(
      "Defense evaluation — prior Sybil defenses: synthetic vs wild",
      "synthetic: 60k honest + 6k injected; wild: campaign at same scale "
      "(override: " +
          std::string(kUsage) + ")");

  // Parse overrides up front: an argv typo must fail before the
  // synthetic battery burns minutes of simulation.
  attack::CampaignConfig cfg;
  cfg.normal_users = 60'000;
  cfg.sybils = 6'000;
  cfg.campaign_hours = 20'000.0;
  if (argc > 1) {
    cfg.normal_users = static_cast<std::uint32_t>(bench::parse_count(
        argv[0], kUsage, argv[1], "normal user count", 50'000'000));
  }
  if (argc > 2) {
    cfg.sybils = static_cast<std::uint32_t>(
        bench::parse_count(argv[0], kUsage, argv[2], "sybil count",
                           50'000'000));
  }
  if (argc > 3) {
    cfg.campaign_hours =
        bench::parse_hours(argv[0], kUsage, argv[3], "campaign hours");
  }

  bench::BatteryOptions options;
  // Route length well below graph size — at Theta(sqrt(n log n)) with
  // small n the verifier's routes would blanket the whole graph.
  options.tuning.route_length = 30;
  options.tuning.max_routes_per_node = 16;
  // r ~ 1.5 sqrt(m) tails -> honest pairs intersect w.h.p.
  options.tuning.r_factor = 1.5;
  options.tuning.walks_per_seed = 200;
  options.tuning.mcmc_burn_in_sweeps = 15;
  options.tuning.mcmc_sample_sweeps = 25;

  {
    const bench::DefenseScenario synthetic =
        bench::synthetic_scenario(60'000, 6'000);
    bench::print_battery(synthetic, bench::run_battery(synthetic, options));
  }
  {
    // The wild graph is the expensive part (hours of simulated campaign
    // at scale): --save-graph snapshots it after the build, --load-graph
    // serves it back out of the binary container instead of simulating.
    // The chaos and crash-recovery passes replay the log.
    cfg.keep_event_log = chaos || crash_every > 0;
    const auto start = std::chrono::steady_clock::now();
    std::optional<attack::CampaignResult> campaign;
    if (load_path.empty()) campaign = attack::run_campaign(cfg);
    const bench::DefenseScenario wild =
        campaign ? bench::scenario_from_campaign(*campaign)
                 : bench::load_scenario(load_path);
    const auto stop = std::chrono::steady_clock::now();
    const double millis =
        std::chrono::duration<double, std::milli>(stop - start).count();
    const char* timing_env = std::getenv("SYBIL_BENCH_TIMING");
    if (timing_env == nullptr || std::strcmp(timing_env, "off") != 0) {
      std::printf("# timing: wild scenario %s %.1f ms\n",
                  load_path.empty() ? "simulated in"
                                    : "loaded from snapshot in",
                  millis);
    }
    if (!save_path.empty()) {
      bench::save_scenario(wild, save_path);
      std::printf("# wild scenario saved to %s\n", save_path.c_str());
    }
    bench::print_battery(wild, bench::run_battery(wild, options));

    if (chaos) {
      // One knob stresses every fault channel at the same rate; the
      // skew bound shapes reordering/redelivery, the seed makes the
      // whole degraded feed replayable.
      faults::FaultRates rates;
      rates.seed = chaos_seed.empty()
                       ? 0
                       : bench::parse_count(argv[0], kUsage,
                                            chaos_seed.c_str(), "chaos seed",
                                            ~std::uint64_t{0});
      const double rate =
          chaos_rate.empty()
              ? 0.01
              : bench::parse_hours(argv[0], kUsage, chaos_rate.c_str(),
                                   "chaos rate");
      if (rate > 1.0) {
        bench::usage_error(argv[0], kUsage, chaos_rate.c_str(),
                           "chaos rate (must be <= 1)");
      }
      rates.drop = rates.reorder = rates.duplicate = rates.regress =
          rates.malform = rates.banned_party = rate;
      if (!chaos_skew.empty()) {
        rates.max_skew_hours = bench::parse_hours(
            argv[0], kUsage, chaos_skew.c_str(), "chaos skew hours");
      }
      bench::print_chaos(bench::run_chaos(campaign->network->log(),
                                          wild.is_sybil, {}, rates));
    }

    if (crash_every > 0) {
      // Kill-and-recover the supervised service every N events and
      // compare verdicts against the uninterrupted service: the delta
      // row is required to be zero (run_crash_recovery throws if not).
      bench::print_crash_recovery(bench::run_crash_recovery(
          campaign->network->log(), wild.is_sybil, {}, crash_every,
          shards));
    }
  }
  std::printf(
      "\n# paper's conclusion: every detector that separates the synthetic\n"
      "# Sybil region (AUC >> 0.5) collapses toward chance on wild Sybils.\n");
  return 0;
}
