// Section 3.1 headline claim: community-based Sybil defenses, validated
// on synthetic graphs with injected tight-knit Sybil regions, fail on
// Sybils as they occur in the wild.
//
// Two graphs, the full registered defense battery:
//   SYNTHETIC — honest OSN-like graph + injected dense Sybil community
//               behind a small attack-edge cut (the prior-work setting);
//   WILD      — the campaign simulator's output, where Sybils integrate
//               into the social graph via accepted stranger requests.
// Every defense runs through the shared SybilDefense registry and one
// bench::run_battery invocation per scenario emits the combined
// timing + DefenseMetrics table (AUC and rejection at a 5% honest
// false-rejection budget). The paper's prediction: high on SYNTHETIC,
// chance-level on WILD — with the paper's own clustering signal the
// one ranker that flips the other way.
#include "bench_common.h"
#include "runner.h"

int main(int argc, char** argv) {
  using namespace sybil;
  bench::print_header(
      "Defense evaluation — prior Sybil defenses: synthetic vs wild",
      "synthetic: 60k honest + 6k injected; wild: campaign at same scale "
      "(override: <normals> <sybils> <hours>)");

  // Parse overrides up front: an argv typo must fail before the
  // synthetic battery burns minutes of simulation.
  attack::CampaignConfig cfg;
  cfg.normal_users = 60'000;
  cfg.sybils = 6'000;
  cfg.campaign_hours = 20'000.0;
  if (argc > 1) {
    cfg.normal_users = static_cast<std::uint32_t>(
        bench::parse_count(argv[0], bench::kCampaignUsage, argv[1],
                           "normal user count", 50'000'000));
  }
  if (argc > 2) {
    cfg.sybils = static_cast<std::uint32_t>(
        bench::parse_count(argv[0], bench::kCampaignUsage, argv[2],
                           "sybil count", 50'000'000));
  }
  if (argc > 3) {
    cfg.campaign_hours = bench::parse_hours(argv[0], bench::kCampaignUsage,
                                            argv[3], "campaign hours");
  }

  bench::BatteryOptions options;
  // Route length well below graph size — at Theta(sqrt(n log n)) with
  // small n the verifier's routes would blanket the whole graph.
  options.tuning.route_length = 30;
  options.tuning.max_routes_per_node = 16;
  // r ~ 1.5 sqrt(m) tails -> honest pairs intersect w.h.p.
  options.tuning.r_factor = 1.5;
  options.tuning.walks_per_seed = 200;
  options.tuning.mcmc_burn_in_sweeps = 15;
  options.tuning.mcmc_sample_sweeps = 25;

  {
    const bench::DefenseScenario synthetic =
        bench::synthetic_scenario(60'000, 6'000);
    bench::print_battery(synthetic, bench::run_battery(synthetic, options));
  }
  {
    const bench::DefenseScenario wild = bench::campaign_scenario(cfg);
    bench::print_battery(wild, bench::run_battery(wild, options));
  }
  std::printf(
      "\n# paper's conclusion: every detector that separates the synthetic\n"
      "# Sybil region (AUC >> 0.5) collapses toward chance on wild Sybils.\n");
  return 0;
}
