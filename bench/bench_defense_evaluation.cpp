// Section 3.1 headline claim: community-based Sybil defenses, validated
// on synthetic graphs with injected tight-knit Sybil regions, fail on
// Sybils as they occur in the wild.
//
// Two graphs, same detector battery:
//   SYNTHETIC — honest OSN-like graph + injected dense Sybil community
//               behind a small attack-edge cut (the prior-work setting);
//   WILD      — the campaign simulator's output, where Sybils integrate
//               into the social graph via accepted stranger requests.
// For each detector we report AUC and Sybil rejection at a 5% honest
// false-rejection budget. The paper's prediction: high on SYNTHETIC,
// chance-level on WILD.
#include <algorithm>

#include "bench_common.h"
#include "core/topology.h"
#include "detectors/community.h"
#include "detectors/evaluation.h"
#include "detectors/sybilguard.h"
#include "detectors/sybilinfer.h"
#include "detectors/sybilinfer_mcmc.h"
#include "detectors/sybillimit.h"
#include "detectors/sybilrank.h"
#include "detectors/sumup.h"
#include "graph/generators.h"

namespace {

using namespace sybil;
using graph::CsrGraph;
using graph::NodeId;

struct Scenario {
  std::string name;
  CsrGraph g;
  std::vector<bool> is_sybil;
  std::vector<NodeId> honest_seeds;  // verified honest accounts
  std::vector<NodeId> sample_honest, sample_sybil;  // for pairwise detectors
};

Scenario make_synthetic(NodeId honest, NodeId sybils) {
  stats::Rng rng(101);
  const auto base = graph::osn_like_graph(
      {.nodes = honest, .mean_links = 12.0, .triadic_closure = 0.2,
       .pa_beta = 1.0},
      rng);
  // The classic setting: a dense Sybil region (internal degree ~40)
  // behind a SMALL attack-edge cut — "normal users are unlikely to
  // accept requests from unknown strangers".
  const auto combined = graph::inject_sybil_community(
      base, sybils, std::min(0.5, 40.0 / sybils), /*attack_edges=*/100, rng);
  Scenario s;
  s.name = "SYNTHETIC (injected community)";
  s.g = CsrGraph::from(combined);
  s.is_sybil.assign(honest + sybils, false);
  for (NodeId v = honest; v < honest + sybils; ++v) s.is_sybil[v] = true;
  for (NodeId i = 0; i < 50; ++i) {
    s.honest_seeds.push_back((i * 997 + 13) % honest);
  }
  for (NodeId i = 0; i < 300; ++i) {
    s.sample_honest.push_back((i * 131 + 7) % honest);
    s.sample_sybil.push_back(honest + (i * 17) % sybils);
  }
  return s;
}

Scenario make_wild(int argc, char** argv) {
  attack::CampaignConfig cfg;
  cfg.normal_users = 60'000;
  cfg.sybils = 6'000;
  cfg.campaign_hours = 20'000.0;
  if (argc > 1) {
    cfg.normal_users =
        static_cast<std::uint32_t>(std::strtoul(argv[1], nullptr, 10));
  }
  if (argc > 2) {
    cfg.sybils = static_cast<std::uint32_t>(std::strtoul(argv[2], nullptr, 10));
  }
  if (argc > 3) cfg.campaign_hours = std::strtod(argv[3], nullptr);
  const auto result = attack::run_campaign(cfg);
  Scenario s;
  s.name = "WILD (campaign simulator)";
  s.g = CsrGraph::from(result.network->graph());
  s.is_sybil.assign(s.g.node_count(), false);
  for (NodeId v : result.sybil_ids) s.is_sybil[v] = true;
  for (NodeId i = 0; i < 50; ++i) {
    s.honest_seeds.push_back(result.normal_ids[(i * 997 + 13) %
                                               result.normal_ids.size()]);
  }
  for (NodeId i = 0; i < 300; ++i) {
    s.sample_honest.push_back(
        result.normal_ids[(i * 131 + 7) % result.normal_ids.size()]);
    s.sample_sybil.push_back(
        result.sybil_ids[(i * 17) % result.sybil_ids.size()]);
  }
  return s;
}

void run_battery(const Scenario& s) {
  std::printf("\n--- %s: %u nodes, %llu edges ---\n", s.name.c_str(),
              s.g.node_count(),
              static_cast<unsigned long long>(s.g.edge_count()));
  std::printf("%-22s %8s %18s %18s\n", "detector", "AUC", "sybil rejected",
              "honest rejected");

  const auto report = [](const char* name,
                         const detect::DefenseMetrics& m) {
    std::printf("%-22s %8.3f %17.1f%% %17.1f%%\n", name, m.auc,
                100.0 * m.sybil_rejection, 100.0 * m.honest_rejection);
  };

  // SybilRank — degree-normalized early-terminated trust propagation.
  {
    const auto scores = detect::sybilrank_scores(s.g, s.honest_seeds);
    report("SybilRank", detect::evaluate_scores(scores, s.is_sybil));
  }
  // SybilInfer — walk-endpoint mass vs stationary expectation.
  {
    detect::SybilInferParams params;
    params.walks_per_seed = 200;
    const detect::SybilInfer infer(s.g, params);
    const auto scores = infer.scores(s.honest_seeds);
    report("SybilInfer", detect::evaluate_scores(scores, s.is_sybil));
  }
  // SybilInfer, full Bayesian MCMC over honest-set cuts.
  {
    detect::SybilInferMcmcParams params;
    params.burn_in_sweeps = 15;
    params.sample_sweeps = 25;
    const auto scores =
        detect::sybilinfer_mcmc_scores(s.g, s.honest_seeds, params);
    report("SybilInfer (MCMC)", detect::evaluate_scores(scores, s.is_sybil));
  }
  // SybilGuard — verifier-route intersection on the sample.
  {
    detect::SybilGuardParams params;
    params.max_routes_per_node = 16;
    // Route length well below graph size — at Θ(√(n log n)) with small n
    // the verifier's routes would blanket the whole graph.
    params.route_length = 30;
    const detect::SybilGuard guard(s.g, params);
    const NodeId verifier = s.honest_seeds[0];
    std::vector<NodeId> nodes;
    std::vector<double> scores_sample;
    for (const auto* pool : {&s.sample_honest, &s.sample_sybil}) {
      for (std::size_t i = 0; i < 60; ++i) {
        const NodeId v = (*pool)[i];
        nodes.push_back(v);
        scores_sample.push_back(guard.intersection_score(verifier, v));
      }
    }
    // Scores over a node sample: reuse evaluate_scores via a dense vector.
    std::vector<double> dense(s.g.node_count(), 0.0);
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      dense[nodes[i]] = scores_sample[i];
    }
    report("SybilGuard (sampled)",
           detect::evaluate_scores(dense, s.is_sybil, nodes));
  }
  // SybilLimit — tail intersection + balance on the sample.
  {
    detect::SybilLimitParams params;
    params.r_factor = 1.5;  // r ≈ 1.5·√m tails → honest pairs intersect whp
    const detect::SybilLimit limit(s.g, params);
    auto verifier = limit.make_verifier(s.honest_seeds[0]);
    std::vector<NodeId> nodes;
    std::vector<bool> accepted;
    for (const auto* pool : {&s.sample_honest, &s.sample_sybil}) {
      for (std::size_t i = 0; i < 60; ++i) {
        nodes.push_back((*pool)[i]);
        accepted.push_back(verifier.accepts((*pool)[i]));
      }
    }
    report("SybilLimit (sampled)",
           detect::evaluate_decisions(nodes, accepted, s.is_sybil));
  }
  // SumUp — vote collection with unit capacities.
  {
    std::vector<NodeId> voters;
    for (std::size_t i = 0; i < 200; ++i) {
      voters.push_back(s.sample_honest[i % s.sample_honest.size()]);
      voters.push_back(s.sample_sybil[i % s.sample_sybil.size()]);
    }
    std::sort(voters.begin(), voters.end());
    voters.erase(std::unique(voters.begin(), voters.end()), voters.end());
    const auto result = detect::sumup_collect(
        s.g, s.honest_seeds[0], voters,
        {.c_max = static_cast<std::uint64_t>(voters.size())});
    report("SumUp (votes)",
           detect::evaluate_decisions(voters, result.accepted, s.is_sybil));
  }
  // Conductance community expansion from a trusted seed.
  {
    const auto ranking = detect::community_expand(s.g, s.honest_seeds[0]);
    std::vector<double> scores(s.g.node_count(), 0.0);
    for (NodeId v = 0; v < s.g.node_count(); ++v) {
      scores[v] = ranking.rank[v] == detect::CommunityRanking::kUnranked
                      ? 0.0
                      : 1.0 - static_cast<double>(ranking.rank[v]) /
                                  static_cast<double>(ranking.order.size());
    }
    report("Community expansion",
           detect::evaluate_scores(scores, s.is_sybil));
  }
}

}  // namespace

int main(int argc, char** argv) {
  bench::print_header(
      "Defense evaluation — prior Sybil defenses: synthetic vs wild",
      "synthetic: 60k honest + 6k injected; wild: campaign at same scale "
      "(override: <normals> <sybils> <hours>)");
  const Scenario synthetic = make_synthetic(60'000, 6'000);
  run_battery(synthetic);
  const Scenario wild = make_wild(argc, argv);
  run_battery(wild);
  std::printf(
      "\n# paper's conclusion: every detector that separates the synthetic\n"
      "# Sybil region (AUC >> 0.5) collapses toward chance on wild Sybils.\n");
  return 0;
}
