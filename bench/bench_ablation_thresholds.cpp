// Ablation 2 (DESIGN.md §5): threshold rule composition. How much of the
// detector's accuracy comes from each of the three features, and what
// does the conjunction buy over single-feature rules?
#include <memory>

#include "bench_common.h"
#include "core/threshold_detector.h"
#include "ml/metrics.h"
#include "ml/roc.h"

int main(int argc, char** argv) {
  using namespace sybil;
  auto config = bench::ground_truth_config(argc, argv);
  bench::print_header("Ablation — threshold rule composition",
                      bench::describe(config));
  osn::GroundTruthSimulator sim(config);
  sim.run();
  const ml::Dataset data = core::build_ground_truth_dataset(
      sim.network(), sim.subject_normals(), sim.subject_sybils());

  struct Variant {
    const char* name;
    bool use_rate, use_accept, use_cc;
  };
  const Variant variants[] = {
      {"rate only (>=20/hr)", true, false, false},
      {"accept only (<0.5)", false, true, false},
      {"cc only (<0.01)", false, false, true},
      {"rate AND accept", true, true, false},
      {"rate AND cc", true, false, true},
      {"accept AND cc", false, true, true},
      {"full conjunction (paper)", true, true, true},
  };

  std::printf("%-28s %14s %14s %10s\n", "rule", "sybil recall",
              "false pos.", "accuracy");
  const core::ThresholdRule rule;  // paper constants
  for (const Variant& v : variants) {
    ml::ConfusionMatrix cm;
    for (std::size_t i = 0; i < data.size(); ++i) {
      const auto row = data.row(i);
      bool flag = true;
      if (v.use_rate) flag = flag && row[0] >= rule.invite_rate_min;
      if (v.use_accept) flag = flag && row[1] < rule.outgoing_accept_max;
      if (v.use_cc) flag = flag && row[3] < rule.clustering_max;
      cm.record(data.label(i), flag ? ml::kSybilLabel : ml::kNormalLabel);
    }
    std::printf("%-28s %13.1f%% %13.2f%% %9.1f%%\n", v.name,
                100.0 * cm.sybil_recall(),
                100.0 * cm.false_positive_rate(), 100.0 * cm.accuracy());
  }
  // Threshold-free view: ROC AUC of each feature as a raw score.
  std::printf("\n# single-feature ROC (threshold-free separability)\n");
  std::printf("%-28s %8s %22s\n", "feature", "AUC", "recall @ 0.5%% FPR");
  std::vector<int> labels;
  labels.reserve(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) labels.push_back(data.label(i));
  const auto feature_roc = [&](const char* name, std::size_t column,
                               double sign) {
    std::vector<double> scores;
    scores.reserve(data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
      scores.push_back(sign * data.row(i)[column]);
    }
    const auto curve = ml::roc_curve(scores, labels);
    std::printf("%-28s %8.4f %21.1f%%\n", name, curve.auc,
                100.0 * curve.tpr_at_fpr(0.005));
  };
  feature_roc("invitation rate (higher)", 0, +1.0);
  feature_roc("outgoing accept (lower)", 1, -1.0);
  feature_roc("incoming accept (higher)", 2, +1.0);
  feature_roc("clustering coeff (lower)", 3, -1.0);

  std::printf(
      "\n# reading: single features already separate well (Figs 1-4), but\n"
      "# the conjunction suppresses the marketer-like honest users that\n"
      "# cross any one threshold — the paper's low-false-positive design.\n");
  return 0;
}
