// Microbenchmarks (google-benchmark) of the hot operations behind the
// experiment pipeline: graph construction, feature extraction, component
// decomposition, clustering, random routes, max-flow, alias sampling,
// binary snapshot save/load (the regenerate-vs-reload tradeoff), the
// service WAL's append/replay path (the durability cost per event),
// streaming ingest and flag-sweep throughput, and the shard-routing
// decision.
//
// `--json <path>` additionally writes a compact machine-readable
// series — one entry per benchmark with its real time and derived
// rates — which CI diffs against the committed BENCH_micro.json
// baseline. All other flags pass through to google-benchmark.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "core/features.h"
#include "core/stream_detector.h"
#include "detectors/incremental_rank.h"
#include "graph/dynamic_graph.h"
#include "service/router.h"
#include "service/wal.h"
#include "service/workload.h"
#include "osn/simulator.h"
#include "graph/clustering.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "graph/maxflow.h"
#include "graph/walks.h"
#include "io/graph_snapshot.h"
#include "stats/distributions.h"

namespace {

using namespace sybil;

const graph::TimestampedGraph& shared_graph() {
  static const graph::TimestampedGraph g = [] {
    stats::Rng rng(1);
    return graph::osn_like_graph(
        {.nodes = 50'000, .mean_links = 12.0, .triadic_closure = 0.2,
         .pa_beta = 1.0},
        rng);
  }();
  return g;
}

const graph::CsrGraph& shared_csr() {
  static const graph::CsrGraph csr = graph::CsrGraph::from(shared_graph());
  return csr;
}

void BM_CsrSnapshot(benchmark::State& state) {
  const auto& g = shared_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::CsrGraph::from(g));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.edge_count()));
}
BENCHMARK(BM_CsrSnapshot);

// --- Snapshot persistence: what --load-graph buys over regenerating ---
//
// BM_OsnGraphGenerate is the cost a bench pays to rebuild the shared
// 50k-node graph from its seed; the Snapshot benches are the cost of
// reading the same structure back from a binary container. The mmap
// variant is the zero-copy path (arrays served in place), the stream
// variant the portable read() fallback (SYBIL_IO_MMAP=off).

void BM_OsnGraphGenerate(benchmark::State& state) {
  for (auto _ : state) {
    stats::Rng rng(1);
    benchmark::DoNotOptimize(graph::osn_like_graph(
        {.nodes = 50'000, .mean_links = 12.0, .triadic_closure = 0.2,
         .pa_beta = 1.0},
        rng));
  }
}
BENCHMARK(BM_OsnGraphGenerate);

std::string snapshot_path(const char* name) {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr ? tmp : "/tmp") + "/" + name;
}

void BM_GraphSnapshotSave(benchmark::State& state) {
  const auto& g = shared_graph();
  const std::string path = snapshot_path("sybil_bench_graph.snap");
  for (auto _ : state) {
    io::save_graph_snapshot(g, path);
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_GraphSnapshotSave);

void BM_GraphSnapshotLoad(benchmark::State& state) {
  const auto& g = shared_graph();
  const std::string path = snapshot_path("sybil_bench_graph.snap");
  io::save_graph_snapshot(g, path);
  for (auto _ : state) {
    benchmark::DoNotOptimize(io::load_graph_snapshot(path));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.edge_count()));
  std::remove(path.c_str());
}
BENCHMARK(BM_GraphSnapshotLoad);

void BM_CsrSnapshotLoad(benchmark::State& state) {
  const bool use_mmap = state.range(0) != 0;
  const std::string path = snapshot_path("sybil_bench_csr.snap");
  io::save_csr_snapshot(shared_csr(), path);
  for (auto _ : state) {
    const graph::CsrGraph loaded = io::load_csr_snapshot(path, use_mmap);
    // Touch the structure so lazily-faulted mmap pages are charged to
    // the benchmark, not to the first algorithm that walks the graph.
    std::uint64_t acc = 0;
    for (graph::NodeId u = 0; u < loaded.node_count(); u += 997) {
      acc += loaded.degree(u);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetLabel(use_mmap ? "mmap" : "stream");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(shared_csr().edge_count()));
  std::remove(path.c_str());
}
BENCHMARK(BM_CsrSnapshotLoad)->Arg(1)->Arg(0);

void BM_ConnectedComponents(benchmark::State& state) {
  const auto& csr = shared_csr();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::connected_components(csr));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(csr.edge_count()));
}
BENCHMARK(BM_ConnectedComponents);

const graph::NeighborView& shared_view() {
  static const graph::NeighborView view =
      graph::NeighborView::from(shared_graph());
  return view;
}

void BM_FirstKClustering(benchmark::State& state) {
  const auto& view = shared_view();
  graph::ClusteringScratch scratch;
  graph::NodeId u = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::first_k_clustering(view, u, 50, scratch));
    u = (u + 1) % view.node_count();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FirstKClustering);

/// The batch entry point over a full candidate sweep (coefficients/sec
/// across 4096 subjects; amortizes chunk scratch and, in real sweeps,
/// the shared sorted view).
void BM_FirstKClusteringBatch(benchmark::State& state) {
  const auto& view = shared_view();
  std::vector<graph::NodeId> subjects(4096);
  for (std::size_t i = 0; i < subjects.size(); ++i) {
    subjects[i] = static_cast<graph::NodeId>((i * 131) % view.node_count());
  }
  std::vector<double> out(subjects.size());
  for (auto _ : state) {
    graph::first_k_clustering_batch(view, subjects, 50, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(subjects.size()));
}
BENCHMARK(BM_FirstKClusteringBatch);

void BM_TriangleCount(benchmark::State& state) {
  const auto& csr = shared_csr();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::triangle_count(csr));
  }
}
BENCHMARK(BM_TriangleCount);

void BM_RandomWalk(benchmark::State& state) {
  const auto& csr = shared_csr();
  stats::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::random_walk_endpoint(csr, 0, static_cast<std::size_t>(state.range(0)), rng));
  }
}
BENCHMARK(BM_RandomWalk)->Arg(16)->Arg(64)->Arg(256);

void BM_RouteTableBuild(benchmark::State& state) {
  const auto& csr = shared_csr();
  for (auto _ : state) {
    stats::Rng rng(3);
    benchmark::DoNotOptimize(graph::RouteTable(csr, rng));
  }
}
BENCHMARK(BM_RouteTableBuild);

void BM_AliasSamplerBuild(benchmark::State& state) {
  const auto& csr = shared_csr();
  std::vector<double> weights(csr.node_count());
  for (graph::NodeId u = 0; u < csr.node_count(); ++u) {
    weights[u] = csr.degree(u) + 1.0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::AliasSampler(weights));
  }
}
BENCHMARK(BM_AliasSamplerBuild);

void BM_AliasSamplerDraw(benchmark::State& state) {
  const auto& csr = shared_csr();
  std::vector<double> weights(csr.node_count());
  for (graph::NodeId u = 0; u < csr.node_count(); ++u) {
    weights[u] = csr.degree(u) + 1.0;
  }
  const stats::AliasSampler alias(weights);
  stats::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(alias(rng));
  }
}
BENCHMARK(BM_AliasSamplerDraw);

void BM_MaxFlowGrid(benchmark::State& state) {
  // k x k grid, unit capacities, corner to corner.
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    graph::FlowNetwork net(static_cast<std::size_t>(k) * k);
    const auto id = [k](int r, int c) {
      return static_cast<std::size_t>(r) * k + c;
    };
    for (int r = 0; r < k; ++r) {
      for (int c = 0; c < k; ++c) {
        if (c + 1 < k) net.add_undirected(id(r, c), id(r, c + 1), 1);
        if (r + 1 < k) net.add_undirected(id(r, c), id(r + 1, c), 1);
      }
    }
    benchmark::DoNotOptimize(net.max_flow(0, id(k - 1, k - 1)));
  }
}
BENCHMARK(BM_MaxFlowGrid)->Arg(16)->Arg(64);

void BM_FeatureExtraction(benchmark::State& state) {
  static const osn::GroundTruthSimulator* sim = [] {
    osn::GroundTruthConfig cfg;
    cfg.background_users = 5'000;
    cfg.subject_normals = 200;
    cfg.subject_sybils = 200;
    cfg.sim_hours = 120.0;
    auto* s = new osn::GroundTruthSimulator(cfg);
    s->run();
    return s;
  }();
  const core::FeatureExtractor fx(sim->network());
  std::size_t i = 0;
  const auto& ids = sim->subject_sybils();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.extract(ids[i % ids.size()]));
    ++i;
  }
}
BENCHMARK(BM_FeatureExtraction);

// --- Service WAL: append and replay throughput ---------------------

std::string wal_bench_dir() {
  return (std::filesystem::temp_directory_path() / "sybil_bench_wal")
      .string();
}

osn::Event wal_bench_event(std::uint64_t i) {
  return osn::Event{osn::EventType::kRequestSent,
                    static_cast<graph::NodeId>(i % 997),
                    static_cast<graph::NodeId>((i * 31 + 1) % 997),
                    static_cast<double>(i) * 1e-3};
}

/// Arg: fsync policy (0 = every append, 2 = never) — the durability
/// cost per logged event is exactly the gap between the two series.
/// The kEveryAppend series runs the way the supervisor pump drives it
/// in production: appends bracketed into 64-record commit groups, one
/// coalesced fsync per group (WalWriter::begin_group/commit_group).
void BM_WalAppend(benchmark::State& state) {
  const std::string dir = wal_bench_dir();
  std::filesystem::remove_all(dir);
  service::WalOptions options;
  options.dir = dir;
  options.fsync = static_cast<service::WalFsync>(state.range(0));
  const bool grouped = options.fsync == service::WalFsync::kEveryAppend;
  constexpr std::uint64_t kGroup = 64;
  std::uint64_t i = 0;
  {
    service::WalWriter wal(options, 0);
    std::uint64_t in_group = 0;
    for (auto _ : state) {
      if (grouped && in_group == 0) wal.begin_group();
      benchmark::DoNotOptimize(wal.append(wal_bench_event(i), i, 0));
      ++i;
      if (grouped && ++in_group == kGroup) {
        wal.commit_group();
        in_group = 0;
      }
    }
    if (grouped && in_group > 0) wal.commit_group();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
  state.SetBytesProcessed(static_cast<std::int64_t>(i) * 44);
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_WalAppend)->Arg(0)->Arg(2);

/// Full-log recovery scan (CRC every record) over 64k records.
void BM_WalReplay(benchmark::State& state) {
  static const std::string dir = [] {
    const std::string d = wal_bench_dir() + "_replay";
    std::filesystem::remove_all(d);
    service::WalOptions options;
    options.dir = d;
    options.fsync = service::WalFsync::kNever;
    service::WalWriter wal(options, 0);
    for (std::uint64_t i = 0; i < 65'536; ++i) {
      wal.append(wal_bench_event(i), i, 0);
    }
    return d;
  }();
  std::uint64_t records = 0;
  for (auto _ : state) {
    service::WalScanReport report;
    const auto replayed = service::scan_wal(dir, 0, report);
    benchmark::DoNotOptimize(replayed.data());
    records += report.records_returned;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
  state.SetBytesProcessed(static_cast<std::int64_t>(records) * 44);
}
BENCHMARK(BM_WalReplay);

// --- Streaming detection: ingest, sweep, and shard routing ----------

const std::vector<osn::Event>& service_bench_events() {
  static const std::vector<osn::Event> events = [] {
    service::WorkloadOptions w;
    w.accounts = 20'000;
    w.events = 100'000;
    w.hours = 48.0;
    w.seed = 2;
    w.malformed_fraction = 0.01;  // keep the dead-letter branch hot
    return service::synthetic_workload(w);
  }();
  return events;
}

core::DetectorOptions service_bench_options() {
  core::DetectorOptions d;
  d.rule.invite_rate_min = 4.0;
  d.rule.outgoing_accept_max = 0.5;
  d.rule.min_requests = 5;
  return d;
}

/// Event-application throughput of the streaming detector (events/sec
/// over a 20k-account, 100k-event synthetic feed).
void BM_ServiceIngest(benchmark::State& state) {
  const auto& events = service_bench_events();
  std::uint64_t n = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::StreamDetector detector(service_bench_options());
    state.ResumeTiming();
    std::uint64_t seq = 0;
    for (const auto& e : events) detector.ingest(e, seq++);
    benchmark::DoNotOptimize(detector.applied_total());
    n += events.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ServiceIngest);

/// Flag-sweep pass over a fully ingested population (candidate
/// re-evaluations/sec — the cost of the sweep-only degradation tier).
void BM_SweepFlags(benchmark::State& state) {
  static core::StreamDetector* detector = [] {
    auto* d = new core::StreamDetector(service_bench_options());
    std::uint64_t seq = 0;
    for (const auto& e : service_bench_events()) d->ingest(e, seq++);
    d->finish();
    return d;
  }();
  std::uint64_t sweeps = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector->sweep_flags(49.0));
    ++sweeps;
  }
  // Every sweep re-examines each tracked account as a flag candidate.
  state.SetItemsProcessed(static_cast<std::int64_t>(sweeps) * 20'000);
}
BENCHMARK(BM_SweepFlags);

/// Pure routing decision: which shards an event must reach (decisions/
/// sec; the per-event overhead the router adds before any WAL I/O).
void BM_ShardRoute(benchmark::State& state) {
  const auto& events = service_bench_events();
  const auto shards = static_cast<std::uint32_t>(state.range(0));
  std::size_t i = 0;
  std::uint64_t copies = 0;
  for (auto _ : state) {
    // The allocation-free plan the router's hot path uses: one type
    // dispatch per event regardless of fanout, so the 8-shard decision
    // costs the same as the 1-shard one.
    const service::RoutePlan plan = service::plan_route(events[i], shards);
    copies += plan.broadcast ? shards : plan.count;
    benchmark::DoNotOptimize(copies);
    i = (i + 1) % events.size();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ShardRoute)->Arg(1)->Arg(8);

// --- Incremental defenses (docs/DEFENSES.md) ------------------------

/// 100k-node base for the incremental-rank benches: large enough that a
/// full power-iteration recompute is decidedly not free, sized to the
/// defense tier's target scale rather than shared_graph()'s 50k.
const graph::TimestampedGraph& defense_bench_base() {
  static const graph::TimestampedGraph g = [] {
    stats::Rng rng(3);
    return graph::osn_like_graph(
        {.nodes = 100'000, .mean_links = 12.0, .triadic_closure = 0.2,
         .pa_beta = 1.0},
        rng);
  }();
  return g;
}

/// Synthetic arrival stream: well-spread (u, v) pairs from two mixed
/// LCGs. Self-loops and duplicates are possible and deliberately kept —
/// the live stream has them too, and add_edge's reject path is part of
/// the measured cost.
std::pair<graph::NodeId, graph::NodeId> defense_bench_arrival(
    std::uint64_t k, graph::NodeId n) {
  return {static_cast<graph::NodeId>((k * 2654435761ull) % n),
          static_cast<graph::NodeId>((k * 40503ull + 12289ull) % n)};
}

/// Edge-arrival maintenance cost: one add_edge against an already-built
/// 100k-node DynamicGraph (arrivals/sec). Covers the chronological
/// append, the sorted-row insert, and the dirty-set update; the dirty
/// set is drained periodically the way a sweep would.
void BM_DynamicGraphAppend(benchmark::State& state) {
  static graph::DynamicGraph* g = [] {
    auto* d = new graph::DynamicGraph(defense_bench_base());
    return d;
  }();
  static std::uint64_t k = 0;
  const auto n = static_cast<graph::NodeId>(g->node_count());
  std::uint64_t added = 0;
  for (auto _ : state) {
    const auto [u, v] = defense_bench_arrival(k++, n);
    added += g->add_edge(u, v, 1e6 + static_cast<double>(k)) ? 1 : 0;
    benchmark::DoNotOptimize(added);
  }
  g->clear_dirty();
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DynamicGraphAppend);

graph::DynamicGraph& incremental_rank_graph() {
  static graph::DynamicGraph* g =
      new graph::DynamicGraph(defense_bench_base());
  return *g;
}

detect::IncrementalSybilRank& incremental_rank_state() {
  static detect::IncrementalSybilRank* rank = [] {
    // The service default epsilon (1e-12) is tuned for near-exactness;
    // the bench uses the documented throughput setting (1e-8), which
    // stops sub-noise deltas from ballooning the frontier. See
    // docs/DEFENSES.md for the accuracy/latency tradeoff.
    detect::IncrementalRankOptions opts;
    opts.residual_epsilon = 1e-8;
    auto* r = new detect::IncrementalSybilRank(opts);
    std::vector<graph::NodeId> seeds(32);
    for (graph::NodeId s = 0; s < 32; ++s) seeds[s] = s;
    r->recompute(incremental_rank_graph(), seeds);
    incremental_rank_graph().clear_dirty();
    return r;
  }();
  return *rank;
}

/// Arg(0): full power-iteration recompute over the 100k-node graph —
/// the cost every sweep would pay without incrementality. Arg(1): fold
/// ONE new edge in via the dirty-region update. The items/sec ratio
/// between the two rows is the headline incrementality win the
/// acceptance gate pins (>= 5x for single-edge deltas).
void BM_IncrementalRank(benchmark::State& state) {
  auto& g = incremental_rank_graph();
  auto& rank = incremental_rank_state();
  static std::uint64_t k = 0;
  const auto n = static_cast<graph::NodeId>(g.node_count());
  const std::vector<graph::NodeId> seeds = [] {
    std::vector<graph::NodeId> s(32);
    for (graph::NodeId i = 0; i < 32; ++i) s[i] = i;
    return s;
  }();
  if (state.range(0) == 0) {
    for (auto _ : state) {
      rank.recompute(g, seeds);
      benchmark::DoNotOptimize(rank.scores().data());
    }
  } else {
    for (auto _ : state) {
      // Admit exactly one genuinely-new edge, then fold its delta.
      while (true) {
        const auto [u, v] = defense_bench_arrival(k++, n);
        if (g.add_edge(u, v, 1e6 + static_cast<double>(k))) break;
      }
      rank.update(g, g.dirty());
      g.clear_dirty();
      benchmark::DoNotOptimize(rank.scores().data());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_IncrementalRank)->Arg(0)->Arg(1);

// --- Compact JSON series for CI baselines ---------------------------

/// Console output plus a collected {name, real_time, rates} record per
/// run, written as compact JSON. Wall-clock numbers are machine-scoped:
/// the committed baseline freezes the *schema* and the machine class it
/// was measured on, not a portable truth.
class JsonSeriesReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Entry e;
      e.name = run.benchmark_name();
      e.real_time_ns = run.GetAdjustedRealTime();
      // Counters reach reporters already finalized: kIsRate values are
      // per-second rates, not raw totals.
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        e.items_per_second = items->second.value;
      }
      const auto bytes = run.counters.find("bytes_per_second");
      if (bytes != run.counters.end()) {
        e.bytes_per_second = bytes->second.value;
      }
      entries_.push_back(std::move(e));
    }
  }

  /// Writes the collected series; returns false on I/O failure.
  bool write_json(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "{\n  \"benchmarks\": [\n");
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      const Entry& e = entries_[i];
      std::fprintf(f, "    {\"name\": \"%s\", \"real_time_ns\": %.1f",
                   e.name.c_str(), e.real_time_ns);
      if (e.items_per_second > 0.0) {
        std::fprintf(f, ", \"items_per_second\": %.1f", e.items_per_second);
      }
      if (e.bytes_per_second > 0.0) {
        std::fprintf(f, ", \"bytes_per_second\": %.1f", e.bytes_per_second);
      }
      std::fprintf(f, "}%s\n", i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    return std::fclose(f) == 0;
  }

  struct Entry {
    std::string name;
    double real_time_ns = 0.0;
    double items_per_second = 0.0;
    double bytes_per_second = 0.0;
  };

  const std::vector<Entry>& entries() const noexcept { return entries_; }

 private:
  std::vector<Entry> entries_;
};

// --- Baseline diffing (--baseline <json>) ---------------------------

/// Parses the exact format write_json() emits (one object per line in
/// the "benchmarks" array). Not a general JSON parser on purpose: the
/// baseline is a machine artifact this binary wrote.
std::vector<JsonSeriesReporter::Entry> load_baseline(
    const std::string& path) {
  std::vector<JsonSeriesReporter::Entry> out;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_micro_perf: cannot read baseline %s\n",
                 path.c_str());
    std::exit(2);
  }
  char line[1024];
  const auto field = [](const char* s, const char* key, double& value) {
    const char* p = std::strstr(s, key);
    if (p == nullptr) return;
    p = std::strchr(p + std::strlen(key), ':');
    if (p != nullptr) value = std::strtod(p + 1, nullptr);
  };
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    const char* name = std::strstr(line, "\"name\"");
    if (name == nullptr) continue;
    const char* open = std::strchr(name + 6, '"');
    const char* close = open != nullptr ? std::strchr(open + 1, '"') : nullptr;
    if (close == nullptr) continue;
    JsonSeriesReporter::Entry e;
    e.name.assign(open + 1, close);
    field(close + 1, "\"real_time_ns\"", e.real_time_ns);
    field(close + 1, "\"items_per_second\"", e.items_per_second);
    field(close + 1, "\"bytes_per_second\"", e.bytes_per_second);
    out.push_back(std::move(e));
  }
  std::fclose(f);
  return out;
}

/// Prints the per-benchmark delta table and returns how many tracked
/// series regressed beyond `threshold` (fractional; rate series compare
/// items/sec, time-only series compare real time). Series present only
/// on one side are reported but never counted as regressions.
int diff_against_baseline(
    const std::vector<JsonSeriesReporter::Entry>& baseline,
    const std::vector<JsonSeriesReporter::Entry>& current,
    double threshold) {
  int regressions = 0;
  std::printf("\n%-34s %14s %14s %9s\n", "benchmark vs baseline", "base",
              "current", "delta");
  for (const auto& base : baseline) {
    const JsonSeriesReporter::Entry* cur = nullptr;
    for (const auto& c : current) {
      if (c.name == base.name) {
        cur = &c;
        break;
      }
    }
    if (cur == nullptr) {
      std::printf("%-34s %14s %14s %9s\n", base.name.c_str(), "-",
                  "not run", "-");
      continue;
    }
    const bool rate = base.items_per_second > 0.0 &&
                      cur->items_per_second > 0.0;
    const double b = rate ? base.items_per_second : base.real_time_ns;
    const double c = rate ? cur->items_per_second : cur->real_time_ns;
    // Positive delta = improvement on both kinds of series.
    const double delta = rate ? c / b - 1.0 : b / c - 1.0;
    const bool regressed = delta < -threshold;
    regressions += regressed ? 1 : 0;
    std::printf("%-34s %14.4g %14.4g %+8.1f%%%s%s\n", base.name.c_str(), b,
                c, delta * 100.0, rate ? " items/s" : " (time)",
                regressed ? "  REGRESSED" : "");
  }
  for (const auto& c : current) {
    bool known = false;
    for (const auto& base : baseline) known = known || base.name == c.name;
    if (!known) {
      std::printf("%-34s %14s %14s %9s\n", c.name.c_str(), "new", "-", "-");
    }
  }
  if (regressions > 0) {
    std::printf("\n%d series regressed more than %.0f%%\n", regressions,
                threshold * 100.0);
  }
  return regressions;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip our own flags before google-benchmark sees the argv:
  //   --json <path>               write the compact series
  //   --baseline <json>           diff against a committed series and
  //                               exit non-zero on regression
  //   --regress-threshold <frac>  tolerated fractional drop (default 0.15)
  std::string json_path;
  std::string baseline_path;
  double threshold = 0.15;
  const auto take = [&](const char* flag, std::string& into) {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], flag) != 0) continue;
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_micro_perf: %s needs a value\n", flag);
        std::exit(2);
      }
      into = argv[i + 1];
      for (int j = i; j + 2 <= argc; ++j) argv[j] = argv[j + 2];
      argc -= 2;
      return;
    }
  };
  take("--json", json_path);
  take("--baseline", baseline_path);
  std::string threshold_str;
  take("--regress-threshold", threshold_str);
  if (!threshold_str.empty()) threshold = std::strtod(threshold_str.c_str(), nullptr);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonSeriesReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty() && !reporter.write_json(json_path)) {
    std::fprintf(stderr, "bench_micro_perf: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }
  if (!baseline_path.empty()) {
    const auto baseline = load_baseline(baseline_path);
    if (diff_against_baseline(baseline, reporter.entries(), threshold) > 0) {
      return 3;
    }
  }
  return 0;
}
