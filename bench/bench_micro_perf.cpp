// Microbenchmarks (google-benchmark) of the hot operations behind the
// experiment pipeline: graph construction, feature extraction, component
// decomposition, clustering, random routes, max-flow, alias sampling,
// binary snapshot save/load (the regenerate-vs-reload tradeoff), and
// the service WAL's append/replay path (the durability cost per event).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "core/features.h"
#include "service/wal.h"
#include "osn/simulator.h"
#include "graph/clustering.h"
#include "graph/components.h"
#include "graph/generators.h"
#include "graph/maxflow.h"
#include "graph/walks.h"
#include "io/graph_snapshot.h"
#include "stats/distributions.h"

namespace {

using namespace sybil;

const graph::TimestampedGraph& shared_graph() {
  static const graph::TimestampedGraph g = [] {
    stats::Rng rng(1);
    return graph::osn_like_graph(
        {.nodes = 50'000, .mean_links = 12.0, .triadic_closure = 0.2,
         .pa_beta = 1.0},
        rng);
  }();
  return g;
}

const graph::CsrGraph& shared_csr() {
  static const graph::CsrGraph csr = graph::CsrGraph::from(shared_graph());
  return csr;
}

void BM_CsrSnapshot(benchmark::State& state) {
  const auto& g = shared_graph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::CsrGraph::from(g));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.edge_count()));
}
BENCHMARK(BM_CsrSnapshot);

// --- Snapshot persistence: what --load-graph buys over regenerating ---
//
// BM_OsnGraphGenerate is the cost a bench pays to rebuild the shared
// 50k-node graph from its seed; the Snapshot benches are the cost of
// reading the same structure back from a binary container. The mmap
// variant is the zero-copy path (arrays served in place), the stream
// variant the portable read() fallback (SYBIL_IO_MMAP=off).

void BM_OsnGraphGenerate(benchmark::State& state) {
  for (auto _ : state) {
    stats::Rng rng(1);
    benchmark::DoNotOptimize(graph::osn_like_graph(
        {.nodes = 50'000, .mean_links = 12.0, .triadic_closure = 0.2,
         .pa_beta = 1.0},
        rng));
  }
}
BENCHMARK(BM_OsnGraphGenerate);

std::string snapshot_path(const char* name) {
  const char* tmp = std::getenv("TMPDIR");
  return std::string(tmp != nullptr ? tmp : "/tmp") + "/" + name;
}

void BM_GraphSnapshotSave(benchmark::State& state) {
  const auto& g = shared_graph();
  const std::string path = snapshot_path("sybil_bench_graph.snap");
  for (auto _ : state) {
    io::save_graph_snapshot(g, path);
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_GraphSnapshotSave);

void BM_GraphSnapshotLoad(benchmark::State& state) {
  const auto& g = shared_graph();
  const std::string path = snapshot_path("sybil_bench_graph.snap");
  io::save_graph_snapshot(g, path);
  for (auto _ : state) {
    benchmark::DoNotOptimize(io::load_graph_snapshot(path));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.edge_count()));
  std::remove(path.c_str());
}
BENCHMARK(BM_GraphSnapshotLoad);

void BM_CsrSnapshotLoad(benchmark::State& state) {
  const bool use_mmap = state.range(0) != 0;
  const std::string path = snapshot_path("sybil_bench_csr.snap");
  io::save_csr_snapshot(shared_csr(), path);
  for (auto _ : state) {
    const graph::CsrGraph loaded = io::load_csr_snapshot(path, use_mmap);
    // Touch the structure so lazily-faulted mmap pages are charged to
    // the benchmark, not to the first algorithm that walks the graph.
    std::uint64_t acc = 0;
    for (graph::NodeId u = 0; u < loaded.node_count(); u += 997) {
      acc += loaded.degree(u);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetLabel(use_mmap ? "mmap" : "stream");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(shared_csr().edge_count()));
  std::remove(path.c_str());
}
BENCHMARK(BM_CsrSnapshotLoad)->Arg(1)->Arg(0);

void BM_ConnectedComponents(benchmark::State& state) {
  const auto& csr = shared_csr();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::connected_components(csr));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(csr.edge_count()));
}
BENCHMARK(BM_ConnectedComponents);

void BM_FirstKClustering(benchmark::State& state) {
  const auto& g = shared_graph();
  const auto& csr = shared_csr();
  graph::NodeId u = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::first_k_clustering(g, csr, u, 50));
    u = (u + 1) % csr.node_count();
  }
}
BENCHMARK(BM_FirstKClustering);

void BM_TriangleCount(benchmark::State& state) {
  const auto& csr = shared_csr();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::triangle_count(csr));
  }
}
BENCHMARK(BM_TriangleCount);

void BM_RandomWalk(benchmark::State& state) {
  const auto& csr = shared_csr();
  stats::Rng rng(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        graph::random_walk_endpoint(csr, 0, static_cast<std::size_t>(state.range(0)), rng));
  }
}
BENCHMARK(BM_RandomWalk)->Arg(16)->Arg(64)->Arg(256);

void BM_RouteTableBuild(benchmark::State& state) {
  const auto& csr = shared_csr();
  for (auto _ : state) {
    stats::Rng rng(3);
    benchmark::DoNotOptimize(graph::RouteTable(csr, rng));
  }
}
BENCHMARK(BM_RouteTableBuild);

void BM_AliasSamplerBuild(benchmark::State& state) {
  const auto& csr = shared_csr();
  std::vector<double> weights(csr.node_count());
  for (graph::NodeId u = 0; u < csr.node_count(); ++u) {
    weights[u] = csr.degree(u) + 1.0;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::AliasSampler(weights));
  }
}
BENCHMARK(BM_AliasSamplerBuild);

void BM_AliasSamplerDraw(benchmark::State& state) {
  const auto& csr = shared_csr();
  std::vector<double> weights(csr.node_count());
  for (graph::NodeId u = 0; u < csr.node_count(); ++u) {
    weights[u] = csr.degree(u) + 1.0;
  }
  const stats::AliasSampler alias(weights);
  stats::Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(alias(rng));
  }
}
BENCHMARK(BM_AliasSamplerDraw);

void BM_MaxFlowGrid(benchmark::State& state) {
  // k x k grid, unit capacities, corner to corner.
  const int k = static_cast<int>(state.range(0));
  for (auto _ : state) {
    graph::FlowNetwork net(static_cast<std::size_t>(k) * k);
    const auto id = [k](int r, int c) {
      return static_cast<std::size_t>(r) * k + c;
    };
    for (int r = 0; r < k; ++r) {
      for (int c = 0; c < k; ++c) {
        if (c + 1 < k) net.add_undirected(id(r, c), id(r, c + 1), 1);
        if (r + 1 < k) net.add_undirected(id(r, c), id(r + 1, c), 1);
      }
    }
    benchmark::DoNotOptimize(net.max_flow(0, id(k - 1, k - 1)));
  }
}
BENCHMARK(BM_MaxFlowGrid)->Arg(16)->Arg(64);

void BM_FeatureExtraction(benchmark::State& state) {
  static const osn::GroundTruthSimulator* sim = [] {
    osn::GroundTruthConfig cfg;
    cfg.background_users = 5'000;
    cfg.subject_normals = 200;
    cfg.subject_sybils = 200;
    cfg.sim_hours = 120.0;
    auto* s = new osn::GroundTruthSimulator(cfg);
    s->run();
    return s;
  }();
  const core::FeatureExtractor fx(sim->network());
  std::size_t i = 0;
  const auto& ids = sim->subject_sybils();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.extract(ids[i % ids.size()]));
    ++i;
  }
}
BENCHMARK(BM_FeatureExtraction);

// --- Service WAL: append and replay throughput ---------------------

std::string wal_bench_dir() {
  return (std::filesystem::temp_directory_path() / "sybil_bench_wal")
      .string();
}

osn::Event wal_bench_event(std::uint64_t i) {
  return osn::Event{osn::EventType::kRequestSent,
                    static_cast<graph::NodeId>(i % 997),
                    static_cast<graph::NodeId>((i * 31 + 1) % 997),
                    static_cast<double>(i) * 1e-3};
}

/// Arg: fsync policy (0 = every append, 2 = never) — the durability
/// cost per logged event is exactly the gap between the two series.
void BM_WalAppend(benchmark::State& state) {
  const std::string dir = wal_bench_dir();
  std::filesystem::remove_all(dir);
  service::WalOptions options;
  options.dir = dir;
  options.fsync = static_cast<service::WalFsync>(state.range(0));
  std::uint64_t i = 0;
  {
    service::WalWriter wal(options, 0);
    for (auto _ : state) {
      benchmark::DoNotOptimize(wal.append(wal_bench_event(i), i, 0));
      ++i;
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(i));
  state.SetBytesProcessed(static_cast<std::int64_t>(i) * 44);
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_WalAppend)->Arg(0)->Arg(2);

/// Full-log recovery scan (CRC every record) over 64k records.
void BM_WalReplay(benchmark::State& state) {
  static const std::string dir = [] {
    const std::string d = wal_bench_dir() + "_replay";
    std::filesystem::remove_all(d);
    service::WalOptions options;
    options.dir = d;
    options.fsync = service::WalFsync::kNever;
    service::WalWriter wal(options, 0);
    for (std::uint64_t i = 0; i < 65'536; ++i) {
      wal.append(wal_bench_event(i), i, 0);
    }
    return d;
  }();
  std::uint64_t records = 0;
  for (auto _ : state) {
    service::WalScanReport report;
    const auto replayed = service::scan_wal(dir, 0, report);
    benchmark::DoNotOptimize(replayed.data());
    records += report.records_returned;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(records));
  state.SetBytesProcessed(static_cast<std::int64_t>(records) * 44);
}
BENCHMARK(BM_WalReplay);

}  // namespace

BENCHMARK_MAIN();
