// Figure 6: CDF of connected Sybil-component sizes.
// Paper: 7,094 components; 98% have fewer than 10 members; yet the
// majority of *connected* Sybils sit in one giant component.
#include "bench_common.h"
#include "core/topology.h"

int main(int argc, char** argv) {
  using namespace sybil;
  const auto config = bench::campaign_config(argc, argv);
  bench::print_header("Figure 6 — connected Sybil component sizes",
                      bench::describe(config));
  const auto result = attack::run_campaign(config);
  const core::TopologyAnalyzer topo(*result.network, result.sybil_ids);

  const auto sizes = topo.component_sizes();
  if (sizes.empty()) {
    std::printf("no Sybil components formed at this scale\n");
    return 0;
  }
  bench::print_cdf("Sybil component size", sizes, 30, /*log_x=*/true);

  std::size_t under10 = 0;
  double connected = 0.0;
  for (double s : sizes) {
    under10 += s < 10.0;
    connected += s;
  }
  std::printf("\n# headline numbers (paper value in brackets)\n");
  std::printf("Sybil components (size >= 2): %zu  [7,094]\n", sizes.size());
  std::printf("Components with < 10 members: %.1f%%  [98%%]\n",
              100.0 * static_cast<double>(under10) /
                  static_cast<double>(sizes.size()));
  std::printf("Largest component: %.0f Sybils = %.1f%% of connected Sybils "
              "[63,541 = ~48%%]\n",
              sizes.front(), 100.0 * sizes.front() / connected);
  return 0;
}
