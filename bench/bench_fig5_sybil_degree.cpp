// Figure 5: degree distribution of all Sybil accounts — all edges vs
// Sybil-only edges.
// Paper: the all-edges distribution is an unremarkable OSN degree curve,
// but only ~20% of Sybils have even one edge to another Sybil.
#include "bench_common.h"
#include "core/topology.h"

int main(int argc, char** argv) {
  using namespace sybil;
  const auto config = bench::campaign_config(argc, argv);
  bench::print_header("Figure 5 — Sybil degree: all edges vs Sybil edges",
                      bench::describe(config));
  const auto result = attack::run_campaign(config);
  const core::TopologyAnalyzer topo(*result.network, result.sybil_ids);

  bench::print_cdf("All edges (Sybil account degree)",
                   topo.sybil_total_degrees(), 30, /*log_x=*/true);
  bench::print_cdf("Sybil edges only (degree to other Sybils)",
                   topo.sybil_edge_degrees(), 30);

  std::printf("\n# headline numbers (paper value in brackets)\n");
  std::printf("Sybils with >=1 Sybil edge: %.1f%%  [~20%%]\n",
              100.0 * topo.fraction_with_sybil_edge());
  std::printf("Total Sybil edges: %llu; attack edges: %llu "
              "[134,941 vs 9.8M at 667,723-Sybil scale]\n",
              static_cast<unsigned long long>(topo.total_sybil_edges()),
              static_cast<unsigned long long>(topo.total_attack_edges()));
  std::printf("Mean Sybil edges per Sybil: %.2f  [0.20]\n",
              static_cast<double>(topo.total_sybil_edges()) /
                  static_cast<double>(topo.sybil_count()));
  return 0;
}
