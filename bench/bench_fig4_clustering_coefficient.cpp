// Figure 4: CDF of the clustering coefficient over each user's first 50
// friends (by friendship creation time).
// Paper: normal average 0.0386, Sybil average 0.0006 — orders of
// magnitude apart. The absolute Sybil floor scales with ambient graph
// density (see EXPERIMENTS.md), so the headline is the separation ratio.
#include "bench_common.h"
#include "runner.h"

#include "stats/summary.h"

int main(int argc, char** argv) {
  using namespace sybil;
  const auto config = bench::ground_truth_config(argc, argv);
  bench::print_header("Figure 4 — clustering coefficient of first 50 friends",
                      bench::describe(config));
  bench::GroundTruthLab lab(config);
  const auto& normal = lab.normal_columns();
  const auto& sybil = lab.sybil_columns();

  bench::print_cdf("Normal clustering coefficient", normal.clustering, 25);
  bench::print_cdf("Sybil clustering coefficient", sybil.clustering, 25);

  const double n_mean = stats::summarize(normal.clustering).mean();
  const double s_mean = stats::summarize(sybil.clustering).mean();
  std::printf("\n# headline numbers (paper value in brackets)\n");
  std::printf("Normal mean cc: %.4f  [0.0386]\n", n_mean);
  std::printf("Sybil mean cc:  %.5f  [0.0006]\n", s_mean);
  std::printf("Separation ratio (normal/sybil): %.1fx  [~64x]\n",
              n_mean / std::max(s_mean, 1e-9));
  std::size_t below = 0;
  for (double c : sybil.clustering) below += c < 0.01;
  std::printf("Sybils below the cc<0.01 rule threshold: %.1f%%\n",
              100.0 * static_cast<double>(below) /
                  static_cast<double>(sybil.clustering.size()));
  return 0;
}
