// Figure 9: degree distribution inside the largest Sybil component —
// Sybil-edge degree vs all-edge degree.
// Paper: 34.5% of members connect to exactly 1 other Sybil; 93.7%
// connect to <= 10. The loose internal wiring is the second argument
// against intentional construction.
#include "bench_common.h"
#include "core/topology.h"

int main(int argc, char** argv) {
  using namespace sybil;
  const auto config = bench::campaign_config(argc, argv);
  bench::print_header("Figure 9 — degree distribution of the giant component",
                      bench::describe(config));
  const auto result = attack::run_campaign(config);
  const core::TopologyAnalyzer topo(*result.network, result.sybil_ids);
  if (topo.component_stats().empty()) {
    std::printf("no Sybil components at this scale\n");
    return 0;
  }

  const auto degrees = topo.component_degrees(0);
  bench::print_cdf("Sybil edges (degree within the component)",
                   degrees.sybil_degree, 30, /*log_x=*/true);
  bench::print_cdf("All edges (total degree of members)",
                   degrees.total_degree, 30, /*log_x=*/true);

  std::size_t deg1 = 0, deg10 = 0;
  double max_deg = 0.0;
  for (double d : degrees.sybil_degree) {
    deg1 += d == 1.0;
    deg10 += d <= 10.0;
    max_deg = std::max(max_deg, d);
  }
  const auto n = static_cast<double>(degrees.sybil_degree.size());
  std::printf("\n# headline numbers (paper value in brackets)\n");
  std::printf("Members with exactly 1 Sybil edge: %.1f%%  [34.5%%]\n",
              100.0 * static_cast<double>(deg1) / n);
  std::printf("Members with <= 10 Sybil edges: %.1f%%  [93.7%%]\n",
              100.0 * static_cast<double>(deg10) / n);
  std::printf("Maximum Sybil-edge degree (the 'magnet' hubs): %.0f\n",
              max_deg);
  return 0;
}
