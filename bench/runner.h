// Experiment-runner library for the bench binaries.
//
// Extracts the scaffolding every bench used to re-implement:
//   - GroundTruthLab: run the ground-truth simulation ONCE and share the
//     network snapshot + cached feature columns across every figure the
//     binary prints;
//   - DefenseScenario builders: the synthetic injected-community graph
//     and the wild campaign graph, with the standard seed/sample picks;
//   - run_battery / print_battery: score a scenario with every defense
//     in the DefenseRegistry, timing each score() call, and emit the
//     combined timing + DefenseMetrics table.
//
// Output determinism: every series/metric row is a pure function of the
// configs and SYBIL-seeded RNG streams, so it is byte-identical for any
// SYBIL_THREADS. Wall-clock timings are inherently not; they are
// printed as "# timing:" comment lines (suppressed entirely when
// SYBIL_BENCH_TIMING=off) so the measurement rows stay diffable. The
// observability registry (core/metrics) is dumped as "# metrics:"
// comment lines with wall-clock fields excluded (suppressed entirely
// with SYBIL_METRICS=off), so whole bench outputs remain byte-identical
// across SYBIL_THREADS and with instrumentation on or off.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "attack/campaign.h"
#include "core/detector_options.h"
#include "core/ground_truth.h"
#include "detectors/defense.h"
#include "detectors/evaluation.h"
#include "faults/fault_injector.h"
#include "graph/csr.h"
#include "osn/events.h"
#include "osn/simulator.h"

namespace sybil::bench {

/// Simulate-once lab over the ground-truth simulator: constructing it
/// runs the simulation; feature columns are computed once on first use
/// and shared by every figure printed from the same binary.
class GroundTruthLab {
 public:
  explicit GroundTruthLab(osn::GroundTruthConfig config);

  const osn::Network& network() const noexcept { return sim_.network(); }
  const std::vector<osn::NodeId>& subject_normals() const noexcept {
    return sim_.subject_normals();
  }
  const std::vector<osn::NodeId>& subject_sybils() const noexcept {
    return sim_.subject_sybils();
  }

  /// Cached per-population feature columns (extracted in parallel).
  const core::FeatureColumns& normal_columns();
  const core::FeatureColumns& sybil_columns();

 private:
  osn::GroundTruthSimulator sim_;
  std::optional<core::FeatureColumns> normal_;
  std::optional<core::FeatureColumns> sybil_;
};

/// A labeled graph scenario every defense scores: the common input of
/// the Section 3.1 battery.
struct DefenseScenario {
  std::string name;
  graph::CsrGraph g;
  std::vector<bool> is_sybil;
  /// Verified honest accounts (first = verifier/collector for the
  /// pairwise protocols).
  std::vector<graph::NodeId> honest_seeds;
  /// Balanced honest+Sybil node sample for defenses that score per
  /// suspect rather than per graph.
  std::vector<graph::NodeId> eval_sample;
};

/// The classic prior-work setting: an OSN-like honest graph plus an
/// injected dense Sybil community behind a small attack-edge cut.
DefenseScenario synthetic_scenario(graph::NodeId honest, graph::NodeId sybils,
                                   std::uint64_t attack_edges = 100,
                                   std::uint64_t seed = 101);

/// The paper's wild setting: Sybils integrate via accepted stranger
/// requests in the campaign simulator.
DefenseScenario campaign_scenario(const attack::CampaignConfig& config);

/// Builds the scenario from an already-run campaign — for callers that
/// need the CampaignResult itself too (e.g. the chaos bench keeps the
/// network's event log). campaign_scenario() is run_campaign + this.
DefenseScenario scenario_from_campaign(const attack::CampaignResult& result);

/// Persists a scenario (CSR graph, labels, seed/sample picks) as a
/// kDefenseScenario container (docs/FORMATS.md §Scenario), so a bench
/// can reuse an expensive simulated graph instead of regenerating it —
/// the bench_defense_evaluation --save-graph/--load-graph flags.
/// Atomic (temp file + rename) like every snapshot writer.
void save_scenario(const DefenseScenario& scenario, const std::string& path);

/// Loads a saved scenario. The CSR arrays are served zero-copy out of
/// the file mapping when mmap is available; corrupt or mistyped files
/// are rejected with typed io::SnapshotErrors.
DefenseScenario load_scenario(const std::string& path);

/// One defense's result on one scenario.
struct DefenseRun {
  std::string defense;
  detect::Determinism determinism = detect::Determinism::kPure;
  /// True when the defense was scored on eval_sample only.
  bool sampled = false;
  double millis = 0.0;
  detect::DefenseMetrics metrics;
};

struct BatteryOptions {
  /// Defense names to run, in order (empty = every registered defense
  /// in registration order).
  std::vector<std::string> defenses;
  /// Tuning forwarded to every registry factory.
  detect::DefenseTuning tuning;
  /// Defenses restricted to the scenario's eval_sample (the pairwise /
  /// vote-collection protocols, which score suspects individually).
  std::vector<std::string> sampled_defenses = {"sybilguard", "sybillimit",
                                               "sumup"};
};

/// Scores the scenario with each defense and evaluates the result.
std::vector<DefenseRun> run_battery(const DefenseScenario& scenario,
                                    const BatteryOptions& options = {});

/// Prints the combined table: one metrics row per defense plus the
/// "# timing:" and "# metrics:" blocks (see the determinism note above).
void print_battery(const DefenseScenario& scenario,
                   const std::vector<DefenseRun>& runs);

/// Dumps the process-wide observability registry as "# metrics:"
/// comment lines (no-op when SYBIL_METRICS=off or when instrumentation
/// is compiled out). print_battery calls this; standalone benches that
/// skip the battery can call it directly.
void print_metrics_block();

/// One clean-vs-faulted streaming-detector comparison: the same event
/// log ingested twice through StreamDetector::ingest — once verbatim,
/// once through a seeded FaultInjector — with identical options.
/// Measures how much detection accuracy a degraded feed costs.
struct ChaosRun {
  /// What the injector actually did (events in/out, per-fault counts).
  faults::FaultReport report;
  /// Watermark used for both passes: the log's intrinsic inversion
  /// bound plus the injected skew bound.
  double watermark_hours = 0.0;
  /// Faulted-pass ingestion accounting (clean-pass dead letters are
  /// required to be zero; run_chaos throws if they are not).
  std::uint64_t applied = 0;
  std::uint64_t deduped = 0;
  std::uint64_t deadlettered = 0;
  std::uint64_t banned_party = 0;
  /// Flag-set accuracy against the campaign's ground-truth labels.
  std::size_t clean_flagged = 0;
  std::size_t faulted_flagged = 0;
  double clean_precision = 0.0;
  double clean_recall = 0.0;
  double faulted_precision = 0.0;
  double faulted_recall = 0.0;
};

/// Runs both passes. Deterministic in (log, options, rates) — the
/// faulted arrival sequence is a pure function of rates.seed.
ChaosRun run_chaos(const osn::EventLog& log,
                   const std::vector<bool>& is_sybil,
                   const core::DetectorOptions& options,
                   const faults::FaultRates& rates);

/// Prints the clean row, the faulted row, and the accuracy delta —
/// byte-stable rows (fault counts and flag sets are seed-determined).
void print_chaos(const ChaosRun& run);

/// One clean-vs-crash-recovered service comparison: the same event log
/// driven through a supervised service twice — once uninterrupted, once
/// killed (no flush, no warning) and recovered every `crash_every`
/// offers. Exactly-once recovery makes the flag sets identical; the
/// precision/recall delta row this produces is REQUIRED to be zero.
/// With `shards` > 1 both passes run through an N-way ShardRouter and
/// every kill takes the whole fleet down; recovery resumes from the
/// min-frontier across shards (docs/ROBUSTNESS.md §Sharded recovery).
struct CrashRecoveryRun {
  std::uint64_t crash_every = 0;
  std::uint64_t shards = 1;
  std::uint64_t events = 0;
  std::uint64_t crashes = 0;
  std::uint64_t records_replayed = 0;  // summed over all recoveries
  double recovery_total_ms = 0.0;      // wall clock, not byte-stable
  double recovery_max_ms = 0.0;
  std::size_t clean_flagged = 0;
  std::size_t recovered_flagged = 0;
  double clean_precision = 0.0;
  double clean_recall = 0.0;
  double recovered_precision = 0.0;
  double recovered_recall = 0.0;
};

/// Runs both passes in throwaway state directories under the system
/// temp dir. Deterministic in (log, options, crash_every, shards)
/// apart from the wall-clock latency fields.
CrashRecoveryRun run_crash_recovery(const osn::EventLog& log,
                                    const std::vector<bool>& is_sybil,
                                    const core::DetectorOptions& options,
                                    std::uint64_t crash_every,
                                    std::uint64_t shards = 1);

/// Prints the clean row, the recovered row, and the delta row
/// (byte-stable); recovery latency goes to a `# timing` comment line,
/// suppressed by SYBIL_BENCH_TIMING=off like every other timing line.
void print_crash_recovery(const CrashRecoveryRun& run);

}  // namespace sybil::bench
