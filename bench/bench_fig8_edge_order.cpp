// Figure 8: the order in which Sybils of the largest component added
// their Sybil friends. Each column of the paper's figure is one Sybil's
// chronological friend sequence with Sybil edges marked.
// Paper: Sybil-edge positions are near-uniformly random (accidental
// creation); a handful of circled columns show solid vertical runs
// (intentional fleet wiring).
#include <algorithm>

#include "bench_common.h"
#include "core/edge_order.h"
#include "core/topology.h"
#include "stats/rng.h"

int main(int argc, char** argv) {
  using namespace sybil;
  const auto config = bench::campaign_config(argc, argv);
  bench::print_header("Figure 8 — Sybil-edge creation order (giant component)",
                      bench::describe(config));
  const auto result = attack::run_campaign(config);
  const core::TopologyAnalyzer topo(*result.network, result.sybil_ids);
  if (topo.component_stats().empty()) {
    std::printf("no Sybil components at this scale\n");
    return 0;
  }

  auto members = topo.component_members(0);
  // The paper samples 1,000 random members of the giant component.
  stats::Rng rng(config.seed + 99);
  for (std::size_t i = members.size(); i > 1; --i) {
    std::swap(members[i - 1], members[rng.uniform_index(i)]);
  }
  if (members.size() > 1000) members.resize(1000);

  const auto rows =
      core::edge_order_rows(*result.network, members, topo.sybil_mask());
  const auto summary = core::summarize_edge_order(rows);

  // Compact rendering: one line per sampled Sybil (first 40 shown),
  // '#' = Sybil edge, '.' = attack edge, sequence truncated at 60.
  std::printf("# first 40 columns (rows here), '#'=Sybil edge '.'=attack\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(40, rows.size()); ++i) {
    std::string line;
    for (std::size_t j = 0; j < std::min<std::size_t>(60, rows[i].degree());
         ++j) {
      line += rows[i].flags[j] ? '#' : '.';
    }
    std::printf("%s\n", line.c_str());
  }

  std::printf("\n# headline numbers (paper value in brackets)\n");
  std::printf("Mean normalized Sybil-edge position: %.3f  "
              "[~0.5, uniform random]\n",
              summary.mean_position);
  std::printf("KS statistic vs Uniform(0,1): %.3f  [small]\n",
              summary.ks_statistic);
  std::printf("Rows flagged intentional (run >= 3): %zu of %zu  "
              "[a handful of circled columns]\n",
              summary.intentional_rows, summary.rows);
  std::printf("Fleet-wired (meshed) Sybils in whole graph: %zu\n",
              result.meshed_sybil_ids.size());
  return 0;
}
