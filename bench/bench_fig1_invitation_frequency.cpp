// Figure 1: CDF of average friend-invitation frequency at the 1-hour and
// 400-hour time scales, for normal users and Sybils.
//
// Paper claims reproduced here: clear separation around 20 invites per
// interval; a 40/hour threshold catches ~70% of Sybils with no false
// positives.
#include "bench_common.h"
#include "runner.h"

int main(int argc, char** argv) {
  using namespace sybil;
  const auto config = bench::ground_truth_config(argc, argv);
  bench::print_header("Figure 1 — invitation frequency CDFs",
                      bench::describe(config));
  bench::GroundTruthLab lab(config);
  const auto& normal = lab.normal_columns();
  const auto& sybil = lab.sybil_columns();

  bench::print_cdf("Normal, 1 Hr window (invites per active hour)",
                   normal.invite_rate_short);
  bench::print_cdf("Normal, 400 Hr window (invites per hour)",
                   normal.invite_rate_long);
  bench::print_cdf("Sybil, 1 Hr window (invites per active hour)",
                   sybil.invite_rate_short);
  bench::print_cdf("Sybil, 400 Hr window (invites per hour)",
                   sybil.invite_rate_long);

  const auto over = [](const std::vector<double>& xs, double threshold) {
    std::size_t n = 0;
    for (double x : xs) n += x >= threshold;
    return 100.0 * static_cast<double>(n) / static_cast<double>(xs.size());
  };
  std::printf("\n# headline numbers (paper value in brackets)\n");
  std::printf("Sybils caught by 40/hr rule: %.1f%%  [~70%%]\n",
              over(sybil.invite_rate_short, 40.0));
  std::printf("Normal false positives at 40/hr: %.2f%%  [0%%]\n",
              over(normal.invite_rate_short, 40.0));
  std::printf("Sybils above 20/interval (short): %.1f%%  [most]\n",
              over(sybil.invite_rate_short, 20.0));
  std::printf("Normals above 20/interval (short): %.2f%%  [~0%%]\n",
              over(normal.invite_rate_short, 20.0));
  return 0;
}
