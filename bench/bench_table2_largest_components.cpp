// Table 2: statistics of the five largest connected Sybil components —
// member count, internal Sybil edges, attack edges, audience (distinct
// normal neighbors).
// Paper's rows (at 667,723-Sybil scale):
//   63,541 / 134,941* / 9,848,881 / 6,497,179   (*component-internal)
//   631 / 1,153 / 1,040,745 / 21,014
//   68 / 67 / 7,761 / 7,702 ... etc. The shape to match: attack edges
// exceed Sybil edges by orders of magnitude in every row.
#include "bench_common.h"
#include "core/topology.h"

int main(int argc, char** argv) {
  using namespace sybil;
  const auto config = bench::campaign_config(argc, argv);
  bench::print_header("Table 2 — five largest Sybil components",
                      bench::describe(config));
  const auto result = attack::run_campaign(config);
  const core::TopologyAnalyzer topo(*result.network, result.sybil_ids);

  std::printf("%10s %12s %13s %10s %18s\n", "Sybils", "Sybil edges",
              "Attack edges", "Audience", "attack/sybil edge ratio");
  const auto& stats = topo.component_stats();
  for (std::size_t i = 0; i < std::min<std::size_t>(5, stats.size()); ++i) {
    const auto& cs = stats[i];
    std::printf("%10u %12llu %13llu %10llu %18.1f\n", cs.sybils,
                static_cast<unsigned long long>(cs.sybil_edges),
                static_cast<unsigned long long>(cs.attack_edges),
                static_cast<unsigned long long>(cs.audience),
                static_cast<double>(cs.attack_edges) /
                    static_cast<double>(std::max<std::uint64_t>(
                        1, cs.sybil_edges)));
  }
  std::printf("\n# paper shape: every row has attack edges >> Sybil edges\n");
  std::printf("total components (size>=2): %zu\n", stats.size());
  std::printf("intentional (fleet-wired) Sybil edges in graph: %llu\n",
              static_cast<unsigned long long>(
                  result.intentional_sybil_edges));
  return 0;
}
